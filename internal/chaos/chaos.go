// Package chaos is the scripted torture suite for the Corona cloud: a
// declarative scenario engine layered on the experiments harness, the
// simnet fault surface, and the discrete-event simulator (ROADMAP item 4).
//
// A Scenario composes fault injectors — network partitions that heal,
// correlated rack failures, sustained Poisson churn, flash-crowd
// subscription bursts, slow-link stragglers — over a timeline of scheduled
// and randomized events driven by the scenario seed. After the fault phase
// the engine runs a bounded convergence loop and then asserts the PR-5/6
// correctness guarantees as machine-checked postconditions (invariants.go):
// exactly one owner per channel, no black-holed subscriber, monotonic
// per-channel versions, exactly-once delivery, and delegate rosters
// consistent with the owner's roster revision. The Self-Stabilizing
// Supervised Pub/Sub line (PAPERS.md) is the theory anchor: from any
// reachable bad state the system must converge — so a scenario that fails
// to converge by its deadline fails loudly, never flakily.
package chaos

import (
	"fmt"
	"math/rand"
	"time"

	"corona/internal/core"
	"corona/internal/experiments"
)

// Config sets the population, timing, and checking knobs of a chaos run.
type Config struct {
	Nodes         int
	Channels      int
	Subscriptions int
	Seed          int64

	// Duration is the fault phase: the horizon injectors schedule their
	// timelines inside. PollInterval/MaintenanceInterval pace the
	// protocol; UpdateEvery pins every channel's origin update interval
	// so delivery liveness is checkable on all of them.
	Duration            time.Duration
	PollInterval        time.Duration
	MaintenanceInterval time.Duration
	UpdateEvery         time.Duration

	// LeaseTTL, DelegateThreshold, OwnerReplicas configure the PR-5/6
	// machinery under test.
	LeaseTTL          time.Duration
	DelegateThreshold int
	OwnerReplicas     int

	// ConvergeDeadline bounds the post-fault convergence loop: the
	// structural invariants must all hold within this much virtual time
	// of the fault phase ending, or the scenario fails.
	ConvergeDeadline time.Duration

	// CheckpointEvery, when positive, also sweeps the version-monotonicity
	// invariant at quiescent mid-run checkpoints.
	CheckpointEvery time.Duration
}

// CIScale is the configuration `make chaos` and the chaos-smoke CI step
// run: small enough for the race detector, large enough that delegation,
// replication, and multi-hop routing are all active.
func CIScale() Config {
	return Config{
		Nodes:               64,
		Channels:            48,
		Subscriptions:       3000,
		Seed:                1,
		Duration:            2 * time.Hour,
		PollInterval:        10 * time.Minute,
		MaintenanceInterval: 15 * time.Minute,
		UpdateEvery:         20 * time.Minute,
		LeaseTTL:            15 * time.Minute,
		DelegateThreshold:   100,
		OwnerReplicas:       2,
		ConvergeDeadline:    2 * time.Hour,
		CheckpointEvery:     30 * time.Minute,
	}
}

// LongScale is the tagged long-run mode: ≥4096 simulated nodes and ≥10^5
// subscriptions (corona-chaos -scale long; not part of CI).
func LongScale() Config {
	return Config{
		Nodes:               4096,
		Channels:            512,
		Subscriptions:       100000,
		Seed:                1,
		Duration:            2 * time.Hour,
		PollInterval:        30 * time.Minute,
		MaintenanceInterval: 30 * time.Minute,
		UpdateEvery:         30 * time.Minute,
		LeaseTTL:            30 * time.Minute,
		DelegateThreshold:   200,
		OwnerReplicas:       2,
		ConvergeDeadline:    3 * time.Hour,
		CheckpointEvery:     time.Hour,
	}
}

// Scenario is one named fault composition. Inject is called once, before
// the simulation starts, and builds the scenario's event timeline against
// the run's harness (via InjectAt offsets from t=0).
type Scenario struct {
	Name        string
	Description string
	Inject      func(r *Run)
}

// Run is one scenario execution in flight: the assembled harness, the
// delivery audit log, and the accounting the injectors and the invariant
// checker share.
type Run struct {
	Cfg      Config
	Scenario Scenario
	H        *experiments.Harness
	Log      *DeliveryLog

	rng *rand.Rand

	// lost marks channels whose entire owner group (owner + replicas)
	// fail-stopped: with every copy of the in-memory subscription state
	// gone, those subscribers are expectedly unreachable (durable recovery
	// is the live stack's job), so the checker excludes them — and counts
	// them, so silent over-loss would still show up.
	lost map[string]bool

	// verLog tracks the highest LastVersion each node has reported per
	// channel, across checkpoints and convergence rounds, for the
	// monotonicity invariant.
	verLog map[int]map[string]uint64

	violations []Violation
}

// Execute runs one scenario to completion and returns its result.
func Execute(sc Scenario, cfg Config) Result {
	r := &Run{Cfg: cfg, Scenario: sc, Log: NewDeliveryLog()}
	scale := experiments.Scale{
		Nodes:               cfg.Nodes,
		Channels:            cfg.Channels,
		Subscriptions:       cfg.Subscriptions,
		PollInterval:        cfg.PollInterval,
		MaintenanceInterval: cfg.MaintenanceInterval,
		Duration:            cfg.Duration,
		WarmUp:              cfg.Duration / 4,
		Bucket:              15 * time.Minute,
		Seed:                cfg.Seed,
	}
	opts := experiments.Options{
		Identity:          true,
		OwnerReplicas:     cfg.OwnerReplicas,
		LeaseTTL:          cfg.LeaseTTL,
		DelegateThreshold: cfg.DelegateThreshold,
		UpdateEvery:       cfg.UpdateEvery,
		Notifier:          r.Log,
	}
	//lint:allow wallclock reporting-only: WallTime measures real harness runtime and never feeds simulation state
	start := time.Now()
	r.H = experiments.NewHarness(scale, opts)
	// Virtual-clock latency stamps: deliveries carrying a detection
	// timestamp feed the end-to-end percentiles in the report.
	r.Log.Now = r.H.Sim.Now
	r.H.Net.SetByteAccounting(false)
	r.rng = r.H.Sim.RNG("chaos/" + sc.Name)
	r.lost = make(map[string]bool)
	r.verLog = make(map[int]map[string]uint64)

	if cfg.CheckpointEvery > 0 {
		r.H.EveryCheckpoint(cfg.CheckpointEvery, func(time.Time) {
			r.violations = append(r.violations, r.checkVersions()...)
		})
	}
	sc.Inject(r)
	r.H.Run(opts)

	// Convergence loop: step one maintenance interval at a time until the
	// structural invariants hold on every live node, bounded by the
	// deadline so a scenario that cannot stabilize fails loudly.
	msgs0 := r.H.Net.Delivered()
	convergeStart := r.H.Sim.Now()
	deadline := convergeStart.Add(cfg.ConvergeDeadline)
	converged := false
	var structural []Violation
	for {
		structural = r.checkStructural()
		structural = append(structural, r.checkVersions()...)
		if len(structural) == 0 {
			converged = true
			break
		}
		if !r.H.Sim.Now().Before(deadline) {
			break
		}
		step := cfg.MaintenanceInterval
		if remain := deadline.Sub(r.H.Sim.Now()); remain < step {
			step = remain
		}
		r.H.Sim.RunFor(step)
	}
	convergeTime := r.H.Sim.Now().Sub(convergeStart)
	msgsToConverge := r.H.Net.Delivered() - msgs0
	if !converged {
		r.violations = append(r.violations, structural...)
	}

	// Probe phase: force one more update/poll/notify round through the
	// converged cloud and assert delivery — every expected subscriber of
	// every surviving channel hears about a fresh version exactly once.
	probeViols := r.probe()
	r.violations = append(r.violations, probeViols...)
	r.violations = append(r.violations, r.checkDeliveries()...)
	// The probe traffic itself must not have broken structure (a dead
	// delegate discovered by a failed notify re-partitions, etc. — give
	// the repair one maintenance round, then re-assert).
	if post := r.checkStructural(); len(post) > 0 {
		r.H.Sim.RunFor(cfg.MaintenanceInterval + time.Minute)
		r.violations = append(r.violations, r.checkStructural()...)
	}

	live := len(r.H.LiveNodes())
	res := Result{
		Scenario:       sc.Name,
		Seed:           cfg.Seed,
		Nodes:          len(r.H.Nodes),
		LiveNodes:      live,
		Channels:       cfg.Channels,
		Subscriptions:  len(r.H.Subs),
		Converged:      converged,
		ConvergeTime:   convergeTime,
		MsgsToConverge: msgsToConverge,
		Violations:     r.violations,
		Deliveries:     r.Log.Total(),
		Duplicates:     r.Log.Duplicates(),
		LostChannels:   len(r.lost),
		//lint:allow wallclock reporting-only: WallTime measures real harness runtime and never feeds simulation state
		WallTime: time.Since(start),
	}
	if p50, ok := r.Log.LatencyQuantile(0.5); ok {
		p99, _ := r.Log.LatencyQuantile(0.99)
		res.DeliveryLatencyP50 = time.Duration(p50 * float64(time.Second))
		res.DeliveryLatencyP99 = time.Duration(p99 * float64(time.Second))
	}
	for _, i := range r.H.LiveNodes() {
		s := r.H.Nodes[i].Stats()
		if s.NotificationsSent > res.PeakOwnerNotifies {
			res.PeakOwnerNotifies = s.NotificationsSent
		}
		if m := s.NotifyBatchesSent + s.DelegateUpdates; m > res.PeakOwnerMsgs {
			res.PeakOwnerMsgs = m
		}
	}
	return res
}

// probe runs one fresh update round through the converged cloud and
// asserts liveness: every expected subscriber of every non-lost channel
// receives a notification within the probe window. The window covers one
// origin update plus two poll intervals plus a maintenance round, so a
// missed delivery is a black hole, not a scheduling artifact.
func (r *Run) probe() []Violation {
	r.Log.MarkWindow()
	window := r.Cfg.UpdateEvery + 2*r.Cfg.PollInterval + r.Cfg.MaintenanceInterval
	r.H.Sim.RunFor(window)

	var out []Violation
	for _, sub := range r.H.Subs {
		if r.lost[sub.URL] {
			continue
		}
		if r.Log.WindowCount(sub.Client, sub.URL) == 0 {
			out = append(out, Violation{
				Invariant: "delivery-liveness",
				Channel:   sub.URL,
				Detail:    fmt.Sprintf("client %s received no notification during the %v probe window", sub.Client, window),
			})
		}
	}
	return out
}

// CrashMany fail-stops a set of nodes at once (a rack), first accounting
// which channels lose their entire owner group — every node holding
// owner or replica subscription state — and are therefore expected
// casualties rather than invariant violations.
func (r *Run) CrashMany(idxs []int) {
	crashing := make(map[int]bool, len(idxs))
	held := make(map[string]bool)
	for _, i := range idxs {
		if r.H.Down[i] || crashing[i] {
			continue
		}
		crashing[i] = true
		r.H.Nodes[i].EachChannel(func(cr core.ChannelRecords) {
			if cr.Owner || cr.Replica {
				held[cr.URL] = true
			}
		})
	}
	for i := range crashing {
		r.H.CrashNode(i)
	}
	for url := range held {
		survivor := false
		for _, i := range r.H.LiveNodes() {
			if cr, ok := r.H.Nodes[i].Records(url); ok && (cr.Owner || cr.Replica) {
				survivor = true
				break
			}
		}
		if !survivor {
			r.lost[url] = true
		}
	}
}

// pickLive returns a random live node index.
func (r *Run) pickLive() int {
	live := r.H.LiveNodes()
	return live[r.rng.Intn(len(live))]
}

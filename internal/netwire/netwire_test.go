package netwire_test

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"corona/internal/clock"
	"corona/internal/codec"
	"corona/internal/ids"
	"corona/internal/netwire"
	"corona/internal/pastry"
)

func init() {
	pastry.RegisterPayloadTypes(codec.RegisterPayload)
	codec.RegisterPayload("test.typed", func() any { return &typedPayload{} })
	codec.RegisterPayload("test.seq", func() any { return &seqPayload{} })
}

type typedPayload struct {
	Text  string `json:"text"`
	Count int    `json:"count"`
}

// seqPayload identifies one message in the concurrent-sender stress test.
type seqPayload struct {
	Sender int    `json:"sender"`
	Seq    int    `json:"seq"`
	Fill   string `json:"fill,omitempty"`
}

// collector accumulates delivered messages.
type collector struct {
	mu   sync.Mutex
	msgs []pastry.Message
	ch   chan struct{}
}

func newCollector() *collector {
	return &collector{ch: make(chan struct{}, 128)}
}

func (c *collector) deliver(m pastry.Message) {
	// The transport hands over lazily-decoded payloads (the overlay
	// materializes just before running a handler); do the same here so
	// assertions see typed structs.
	if err := m.MaterializePayload(); err != nil {
		panic(err)
	}
	c.mu.Lock()
	c.msgs = append(c.msgs, m)
	c.mu.Unlock()
	select {
	case c.ch <- struct{}{}:
	default:
	}
}

func (c *collector) wait(t *testing.T, n int) []pastry.Message {
	t.Helper()
	deadline := time.After(10 * time.Second)
	for {
		c.mu.Lock()
		if len(c.msgs) >= n {
			out := append([]pastry.Message(nil), c.msgs...)
			c.mu.Unlock()
			return out
		}
		got := len(c.msgs)
		c.mu.Unlock()
		select {
		case <-c.ch:
		case <-time.After(50 * time.Millisecond):
		case <-deadline:
			t.Fatalf("timed out waiting for %d messages (got %d)", n, got)
		}
	}
}

func TestSendDeliversTypedPayload(t *testing.T) {
	rx := newCollector()
	a, err := netwire.Listen("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := netwire.Listen("127.0.0.1:0", rx.deliver)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	to := pastry.Addr{ID: ids.HashString("b"), Endpoint: b.Addr()}
	msg := pastry.Message{
		Type:    "test.typed",
		Key:     ids.HashString("key"),
		From:    pastry.Addr{ID: ids.HashString("a"), Endpoint: a.Addr()},
		Hops:    3,
		Cover:   2,
		Payload: &typedPayload{Text: "hello", Count: 42},
	}
	if err := a.Send(to, msg); err != nil {
		t.Fatal(err)
	}
	got := rx.wait(t, 1)[0]
	if got.Type != "test.typed" || got.Hops != 3 || got.Cover != 2 {
		t.Fatalf("envelope fields lost: %+v", got)
	}
	if got.Key != msg.Key {
		t.Fatalf("key mismatch: %v vs %v", got.Key, msg.Key)
	}
	p, ok := got.Payload.(*typedPayload)
	if !ok {
		t.Fatalf("payload type = %T", got.Payload)
	}
	if p.Text != "hello" || p.Count != 42 {
		t.Fatalf("payload = %+v", p)
	}
}

// TestSendToDeadEndpointReportsFault covers the asynchronous failure
// contract: Send succeeds locally and the dial failure arrives through
// the fault callback after the retry budget.
func TestSendToDeadEndpointReportsFault(t *testing.T) {
	a, err := netwire.Listen("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	a.DialTimeout = 200 * time.Millisecond
	a.BackoffBase = 10 * time.Millisecond

	faults := make(chan pastry.Addr, 1)
	a.OnSendFault(func(to pastry.Addr, err error) {
		select {
		case faults <- to:
		default:
		}
	})
	dead := pastry.Addr{ID: ids.HashString("dead"), Endpoint: "127.0.0.1:1"}
	if err := a.Send(dead, pastry.Message{Type: "x"}); err != nil {
		t.Fatalf("async Send should accept locally, got %v", err)
	}
	select {
	case to := <-faults:
		if to.ID != dead.ID {
			t.Fatalf("fault for %v, want %v", to, dead)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no fault reported for dead endpoint")
	}
	if a.Dropped() == 0 {
		t.Fatal("undeliverable message not counted as dropped")
	}
}

// TestPeerQueueStats covers the backpressure observability surface:
// per-peer queue depth/capacity snapshots and per-peer drop counters.
func TestPeerQueueStats(t *testing.T) {
	a, err := netwire.Listen("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	a.QueueLen = 4
	a.DialTimeout = 100 * time.Millisecond
	a.DialAttempts = 1

	dead := pastry.Addr{ID: ids.HashString("dead"), Endpoint: "127.0.0.1:1"}
	for i := 0; i < 32; i++ {
		if err := a.Send(dead, pastry.Message{Type: "x"}); err != nil {
			t.Fatal(err)
		}
	}
	// The per-peer and transport-wide counters are bumped one after the
	// other, so any single snapshot pair can disagree transiently; poll
	// until the counters are both nonzero and agree (they quiesce once
	// every queued message has been dropped).
	deadline := time.Now().Add(5 * time.Second)
	for {
		qs := a.PeerQueues()
		if len(qs) == 1 && qs[0].Endpoint == dead.Endpoint && qs[0].Capacity == 4 &&
			qs[0].Drops > 0 && qs[0].Drops == a.Dropped() {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("per-peer drops never surfaced/converged; queues = %+v, dropped = %d", qs, a.Dropped())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestManyMessagesInOrderPerConnection(t *testing.T) {
	rx := newCollector()
	a, _ := netwire.Listen("127.0.0.1:0", nil)
	defer a.Close()
	b, _ := netwire.Listen("127.0.0.1:0", rx.deliver)
	defer b.Close()
	a.Backpressure = netwire.Block
	to := pastry.Addr{Endpoint: b.Addr()}
	const n = 200
	for i := 0; i < n; i++ {
		if err := a.Send(to, pastry.Message{Type: "test.typed", Payload: &typedPayload{Count: i}}); err != nil {
			t.Fatal(err)
		}
	}
	msgs := rx.wait(t, n)
	for i, m := range msgs[:n] {
		if m.Payload.(*typedPayload).Count != i {
			t.Fatalf("message %d out of order: %+v", i, m.Payload)
		}
	}
}

func TestUnregisteredPayloadDecodesGeneric(t *testing.T) {
	rx := newCollector()
	a, _ := netwire.Listen("127.0.0.1:0", nil)
	defer a.Close()
	b, _ := netwire.Listen("127.0.0.1:0", rx.deliver)
	defer b.Close()
	err := a.Send(pastry.Addr{Endpoint: b.Addr()}, pastry.Message{
		Type:    "test.unregistered",
		Payload: map[string]any{"k": "v"},
	})
	if err != nil {
		t.Fatal(err)
	}
	got := rx.wait(t, 1)[0]
	m, ok := got.Payload.(map[string]any)
	if !ok || m["k"] != "v" {
		t.Fatalf("generic payload = %#v", got.Payload)
	}
}

// TestJSONCodecNegotiation pins the per-connection hello: a sender
// configured for the seed's JSON format interoperates with a default
// (binary-preferring) receiver.
func TestJSONCodecNegotiation(t *testing.T) {
	rx := newCollector()
	a, _ := netwire.Listen("127.0.0.1:0", nil)
	defer a.Close()
	a.Codec = codec.JSON
	b, _ := netwire.Listen("127.0.0.1:0", rx.deliver)
	defer b.Close()
	err := a.Send(pastry.Addr{Endpoint: b.Addr()}, pastry.Message{
		Type:    "test.typed",
		Payload: &typedPayload{Text: "via-json", Count: 7},
	})
	if err != nil {
		t.Fatal(err)
	}
	got := rx.wait(t, 1)[0]
	p, ok := got.Payload.(*typedPayload)
	if !ok || p.Text != "via-json" {
		t.Fatalf("payload = %#v", got.Payload)
	}
}

// TestConcurrentSendersFrameIntegrity hammers one receiver from many
// goroutines sharing one transport and asserts every message decodes
// cleanly and arrives exactly once — the regression guard for the seed
// bug where two goroutines interleaved partial frames on one net.Conn.
func TestConcurrentSendersFrameIntegrity(t *testing.T) {
	rx := newCollector()
	a, err := netwire.Listen("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := netwire.Listen("127.0.0.1:0", rx.deliver)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	a.Backpressure = netwire.Block // the test asserts zero loss

	const senders = 16
	const perSender = 250
	to := pastry.Addr{ID: ids.HashString("b"), Endpoint: b.Addr()}
	fill := make([]byte, 512) // push frames past trivial sizes
	for i := range fill {
		fill[i] = byte('a' + i%26)
	}
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(sender int) {
			defer wg.Done()
			for i := 0; i < perSender; i++ {
				msg := pastry.Message{
					Type:    "test.seq",
					From:    pastry.Addr{ID: ids.HashString(fmt.Sprintf("s%d", sender)), Endpoint: a.Addr()},
					Payload: &seqPayload{Sender: sender, Seq: i, Fill: string(fill)},
				}
				if err := a.Send(to, msg); err != nil {
					t.Errorf("sender %d: %v", sender, err)
					return
				}
			}
		}(s)
	}
	wg.Wait()

	msgs := rx.wait(t, senders*perSender)
	if len(msgs) != senders*perSender {
		t.Fatalf("delivered %d messages, want %d", len(msgs), senders*perSender)
	}
	seen := make(map[[2]int]bool, len(msgs))
	perSenderNext := make([]int, senders)
	for _, m := range msgs {
		p, ok := m.Payload.(*seqPayload)
		if !ok {
			t.Fatalf("corrupt frame: payload %T", m.Payload)
		}
		if p.Fill != string(fill) {
			t.Fatalf("corrupt payload body from sender %d seq %d", p.Sender, p.Seq)
		}
		key := [2]int{p.Sender, p.Seq}
		if seen[key] {
			t.Fatalf("duplicate delivery: sender %d seq %d", p.Sender, p.Seq)
		}
		seen[key] = true
		// Per-sender order must hold even though senders interleave.
		if p.Seq < perSenderNext[p.Sender] {
			t.Fatalf("sender %d: seq %d arrived after %d", p.Sender, p.Seq, perSenderNext[p.Sender])
		}
		perSenderNext[p.Sender] = p.Seq + 1
	}
	if a.Dropped() != 0 {
		t.Fatalf("blocking transport dropped %d messages", a.Dropped())
	}
}

// TestIdlePeerRetirementAndRevival covers the churn-leak guard: an idle
// writer retires (releasing its goroutine and connection) and a later
// Send to the same endpoint transparently revives the path.
func TestIdlePeerRetirementAndRevival(t *testing.T) {
	rx := newCollector()
	a, err := netwire.Listen("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	a.IdleTimeout = 50 * time.Millisecond
	b, err := netwire.Listen("127.0.0.1:0", rx.deliver)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	to := pastry.Addr{Endpoint: b.Addr()}
	if err := a.Send(to, pastry.Message{Type: "test.typed", Payload: &typedPayload{Count: 1}}); err != nil {
		t.Fatal(err)
	}
	rx.wait(t, 1)
	// Let the writer retire, then send again through the revived peer.
	time.Sleep(250 * time.Millisecond)
	if err := a.Send(to, pastry.Message{Type: "test.typed", Payload: &typedPayload{Count: 2}}); err != nil {
		t.Fatal(err)
	}
	msgs := rx.wait(t, 2)
	if msgs[1].Payload.(*typedPayload).Count != 2 {
		t.Fatalf("post-retirement message corrupted: %+v", msgs[1].Payload)
	}
	if a.Dropped() != 0 {
		t.Fatalf("retirement dropped %d messages", a.Dropped())
	}
}

// TestBlockPolicyUnderAggressiveRetirement drives the worst case for the
// idle-retire/Block-enqueue interaction: a tiny queue, an idle timeout
// short enough to fire between bursts, and several blocking senders. A
// retire() that blocked on the peer mutex here would freeze the whole
// transport (the regression this guards); the run must stay live and
// lossless.
func TestBlockPolicyUnderAggressiveRetirement(t *testing.T) {
	rx := newCollector()
	a, err := netwire.Listen("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	a.Backpressure = netwire.Block
	a.QueueLen = 2
	a.IdleTimeout = time.Millisecond
	b, err := netwire.Listen("127.0.0.1:0", rx.deliver)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	const senders = 4
	const perSender = 100
	to := pastry.Addr{Endpoint: b.Addr()}
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(sender int) {
			defer wg.Done()
			for i := 0; i < perSender; i++ {
				if err := a.Send(to, pastry.Message{Type: "test.seq", Payload: &seqPayload{Sender: sender, Seq: i}}); err != nil {
					t.Errorf("sender %d: %v", sender, err)
					return
				}
				if i%10 == 0 {
					time.Sleep(3 * time.Millisecond) // give the idle timer chances to fire mid-burst
				}
			}
		}(s)
	}
	wg.Wait()
	rx.wait(t, senders*perSender)
	if a.Dropped() != 0 {
		t.Fatalf("blocking transport dropped %d messages", a.Dropped())
	}
}

// TestCloseClosesInboundConnections guards the seed leak where accepted
// connections were never tracked: after Close, a connected sender must
// observe its connection dying.
func TestCloseClosesInboundConnections(t *testing.T) {
	rx := newCollector()
	b, err := netwire.Listen("127.0.0.1:0", rx.deliver)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", b.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte{'b'}); err != nil { // codec hello
		t.Fatal(err)
	}
	// Let the accept loop register the connection before closing.
	time.Sleep(50 * time.Millisecond)
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("inbound connection still open after transport Close")
	}
}

// TestPastryOverTCP runs a small overlay over real sockets: join, route,
// and verify delivery — the protocol-fidelity check for the deployment
// path.
func TestPastryOverTCP(t *testing.T) {
	const n = 6
	type peer struct {
		node *pastry.Node
		tr   *netwire.Transport
	}
	peers := make([]*peer, 0, n)
	defer func() {
		for _, p := range peers {
			p.tr.Close()
		}
	}()
	for i := 0; i < n; i++ {
		tr, err := netwire.Listen("127.0.0.1:0", nil)
		if err != nil {
			t.Fatal(err)
		}
		addr := pastry.Addr{ID: ids.HashString(fmt.Sprintf("tcp-node-%d", i)), Endpoint: tr.Addr()}
		node := pastry.NewNode(pastry.DefaultConfig(), addr, tr, clock.Real{})
		tr.OnDeliver(node.Deliver)
		peers = append(peers, &peer{node: node, tr: tr})
	}
	peers[0].node.Bootstrap()
	for i := 1; i < n; i++ {
		if err := peers[i].node.Join(peers[0].node.Self()); err != nil {
			t.Fatal(err)
		}
		deadline := time.Now().Add(5 * time.Second)
		for !peers[i].node.Joined() && time.Now().Before(deadline) {
			time.Sleep(10 * time.Millisecond)
		}
		if !peers[i].node.Joined() {
			t.Fatalf("node %d never joined", i)
		}
	}
	// Let post-join state exchanges settle.
	time.Sleep(200 * time.Millisecond)

	key := ids.HashString("tcp-route-key")
	want := peers[0]
	for _, p := range peers[1:] {
		if p.node.Self().ID.Distance(key).Cmp(want.node.Self().ID.Distance(key)) < 0 {
			want = p
		}
	}
	done := make(chan pastry.Addr, n)
	for _, p := range peers {
		self := p.node.Self()
		p.node.Handle("test.route", func(m pastry.Message) { done <- self })
	}
	if err := peers[n-1].node.Route(key, "test.route", nil); err != nil {
		t.Fatal(err)
	}
	select {
	case root := <-done:
		if root.ID != want.node.Self().ID {
			t.Fatalf("routed to %v, want %v", root, want.node.Self())
		}
	case <-time.After(5 * time.Second):
		t.Fatal("routed message never delivered over TCP")
	}

	// The transports meter traffic; a cluster that just ran a join
	// protocol must have moved bytes in both directions somewhere.
	var sent, recv uint64
	for _, p := range peers {
		s := p.node.Stats()
		sent += s.WireBytesSent
		recv += s.WireBytesReceived
	}
	if sent == 0 || recv == 0 {
		t.Fatalf("wire byte counters dead: sent=%d recv=%d", sent, recv)
	}
}

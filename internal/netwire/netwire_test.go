package netwire_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"corona/internal/clock"
	"corona/internal/ids"
	"corona/internal/netwire"
	"corona/internal/pastry"
)

func init() {
	pastry.RegisterPayloadTypes(netwire.RegisterPayload)
	netwire.RegisterPayload("test.typed", func() any { return &typedPayload{} })
}

type typedPayload struct {
	Text  string `json:"text"`
	Count int    `json:"count"`
}

// collector accumulates delivered messages.
type collector struct {
	mu   sync.Mutex
	msgs []pastry.Message
	ch   chan struct{}
}

func newCollector() *collector {
	return &collector{ch: make(chan struct{}, 128)}
}

func (c *collector) deliver(m pastry.Message) {
	c.mu.Lock()
	c.msgs = append(c.msgs, m)
	c.mu.Unlock()
	c.ch <- struct{}{}
}

func (c *collector) wait(t *testing.T, n int) []pastry.Message {
	t.Helper()
	deadline := time.After(5 * time.Second)
	for {
		c.mu.Lock()
		if len(c.msgs) >= n {
			out := append([]pastry.Message(nil), c.msgs...)
			c.mu.Unlock()
			return out
		}
		c.mu.Unlock()
		select {
		case <-c.ch:
		case <-deadline:
			t.Fatalf("timed out waiting for %d messages", n)
		}
	}
}

func TestSendDeliversTypedPayload(t *testing.T) {
	rx := newCollector()
	a, err := netwire.Listen("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := netwire.Listen("127.0.0.1:0", rx.deliver)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	to := pastry.Addr{ID: ids.HashString("b"), Endpoint: b.Addr()}
	msg := pastry.Message{
		Type:    "test.typed",
		Key:     ids.HashString("key"),
		From:    pastry.Addr{ID: ids.HashString("a"), Endpoint: a.Addr()},
		Hops:    3,
		Cover:   2,
		Payload: &typedPayload{Text: "hello", Count: 42},
	}
	if err := a.Send(to, msg); err != nil {
		t.Fatal(err)
	}
	got := rx.wait(t, 1)[0]
	if got.Type != "test.typed" || got.Hops != 3 || got.Cover != 2 {
		t.Fatalf("envelope fields lost: %+v", got)
	}
	if got.Key != msg.Key {
		t.Fatalf("key mismatch: %v vs %v", got.Key, msg.Key)
	}
	p, ok := got.Payload.(*typedPayload)
	if !ok {
		t.Fatalf("payload type = %T", got.Payload)
	}
	if p.Text != "hello" || p.Count != 42 {
		t.Fatalf("payload = %+v", p)
	}
}

func TestSendToDeadEndpointFails(t *testing.T) {
	a, err := netwire.Listen("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	a.DialTimeout = 200 * time.Millisecond
	err = a.Send(pastry.Addr{Endpoint: "127.0.0.1:1"}, pastry.Message{Type: "x"})
	if err == nil {
		t.Fatal("send to dead endpoint succeeded")
	}
}

func TestManyMessagesInOrderPerConnection(t *testing.T) {
	rx := newCollector()
	a, _ := netwire.Listen("127.0.0.1:0", nil)
	defer a.Close()
	b, _ := netwire.Listen("127.0.0.1:0", rx.deliver)
	defer b.Close()
	to := pastry.Addr{Endpoint: b.Addr()}
	const n = 200
	for i := 0; i < n; i++ {
		if err := a.Send(to, pastry.Message{Type: "test.typed", Payload: &typedPayload{Count: i}}); err != nil {
			t.Fatal(err)
		}
	}
	msgs := rx.wait(t, n)
	for i, m := range msgs[:n] {
		if m.Payload.(*typedPayload).Count != i {
			t.Fatalf("message %d out of order: %+v", i, m.Payload)
		}
	}
}

func TestUnregisteredPayloadDecodesGeneric(t *testing.T) {
	rx := newCollector()
	a, _ := netwire.Listen("127.0.0.1:0", nil)
	defer a.Close()
	b, _ := netwire.Listen("127.0.0.1:0", rx.deliver)
	defer b.Close()
	err := a.Send(pastry.Addr{Endpoint: b.Addr()}, pastry.Message{
		Type:    "test.unregistered",
		Payload: map[string]any{"k": "v"},
	})
	if err != nil {
		t.Fatal(err)
	}
	got := rx.wait(t, 1)[0]
	m, ok := got.Payload.(map[string]any)
	if !ok || m["k"] != "v" {
		t.Fatalf("generic payload = %#v", got.Payload)
	}
}

// TestPastryOverTCP runs a small overlay over real sockets: join, route,
// and verify delivery — the protocol-fidelity check for the deployment
// path.
func TestPastryOverTCP(t *testing.T) {
	const n = 6
	type peer struct {
		node *pastry.Node
		tr   *netwire.Transport
	}
	peers := make([]*peer, 0, n)
	defer func() {
		for _, p := range peers {
			p.tr.Close()
		}
	}()
	for i := 0; i < n; i++ {
		tr, err := netwire.Listen("127.0.0.1:0", nil)
		if err != nil {
			t.Fatal(err)
		}
		addr := pastry.Addr{ID: ids.HashString(fmt.Sprintf("tcp-node-%d", i)), Endpoint: tr.Addr()}
		node := pastry.NewNode(pastry.DefaultConfig(), addr, tr, clock.Real{})
		tr.OnDeliver(node.Deliver)
		peers = append(peers, &peer{node: node, tr: tr})
	}
	peers[0].node.Bootstrap()
	for i := 1; i < n; i++ {
		if err := peers[i].node.Join(peers[0].node.Self()); err != nil {
			t.Fatal(err)
		}
		time.Sleep(100 * time.Millisecond)
	}

	key := ids.HashString("tcp-route-key")
	want := peers[0]
	for _, p := range peers[1:] {
		if p.node.Self().ID.Distance(key).Cmp(want.node.Self().ID.Distance(key)) < 0 {
			want = p
		}
	}
	done := make(chan pastry.Addr, n)
	for _, p := range peers {
		self := p.node.Self()
		p.node.Handle("test.route", func(m pastry.Message) { done <- self })
	}
	if err := peers[n-1].node.Route(key, "test.route", nil); err != nil {
		t.Fatal(err)
	}
	select {
	case root := <-done:
		if root.ID != want.node.Self().ID {
			t.Fatalf("routed to %v, want %v", root, want.node.Self())
		}
	case <-time.After(5 * time.Second):
		t.Fatal("routed message never delivered over TCP")
	}
}

// Package netwire carries overlay messages over real TCP connections —
// the live-deployment counterpart of simnet.
//
// # Architecture
//
// Send is an asynchronous enqueue: each destination endpoint gets a
// dedicated outbound queue drained by one writer goroutine that owns that
// peer's connection. Serializing all writes to a peer through one
// goroutine makes frame interleaving impossible by construction — any
// number of goroutines may call Send concurrently. Delivery failures
// (unreachable peer, write error after retries) are reported out of band
// through the OnSendFault callback; the overlay uses them as failure
// hints exactly as it used the seed's synchronous Send errors.
//
// The writer coalesces whatever is queued — up to MaxBatch messages —
// into a single multi-message frame, amortizing the syscall and frame
// overhead across the batch under load while adding no delay when the
// queue is shallow (a lone message ships immediately). Connections are
// established lazily and re-established with exponential backoff; reads
// and writes go through bufio. A writer whose queue stays empty past
// IdleTimeout retires — its goroutine, queue, and connection are
// released, and a later Send revives the peer transparently — so
// membership churn does not accumulate per-endpoint state forever.
//
// When a peer's queue is full, the backpressure policy decides: DropNewest
// (the default) discards the new message and counts it in Dropped —
// Corona's protocol tolerates loss the way it tolerates UDP loss, and the
// next maintenance round repairs — while Block makes Send wait for space,
// for callers that need lossless local handoff (tests, bulk transfers).
//
// # Wire protocol
//
// Each connection is one-directional: the dialer writes, the accepter
// reads. A connection opens with a one-byte hello naming the codec for
// every frame that follows:
//
//	'B'  compact binary envelope with varint Hops/Cover trailer
//	     (codec.Binary, the default)
//	'j'  JSON envelope (codec.JSON, the seed format)
//
// ('b' was PR 1's binary envelope, which carried Hops/Cover before the
// payload; its ID is retired rather than reused so a skewed peer fails
// closed — unknown hello, connection dropped — instead of misparsing.)
//
// After the hello, the stream is a sequence of frames:
//
//	+------------+-----------------+----------------------------------+
//	| length u32 | count uvarint   | count × (len uvarint + body)     |
//	+------------+-----------------+----------------------------------+
//
// length is the big-endian byte count of everything after it (count plus
// all message records); it is bounded by maxFrame. Each body is one
// overlay message encoded by the negotiated codec (see internal/codec for
// both envelope layouts). Messages within a frame, and frames within a
// connection, preserve the sender's enqueue order.
//
// # Payload formats
//
// Within a binary-codec body, the payload region is a length-prefixed
// blob in one of two forms, selected by the envelope's payload-format
// flag (bit 2 of the flags byte):
//
//   - native binary: the payload type's own AppendBinary encoding
//     (codec.BinaryMarshaler). Corona's hot types — subscribe/unsubscribe,
//     notify, pollctl, update, report, maintain (including the sparse
//     honeycomb.ClusterSet form), and the wedgefwd wrapper — travel this
//     way; their field layouts are documented at their implementations in
//     internal/core/messages_wire.go and internal/honeycomb/wire.go.
//   - JSON: the payload struct as a JSON object.
//
// The rule for senders: a payload encodes natively iff its message type
// is registered with a constructor implementing codec.BinaryUnmarshaler;
// every other payload — unregistered types, and registered types without
// the binary contract (replicate) — falls back to JSON payload bytes with
// the flag clear. Receivers decode strictly by the flag, so new native
// formats roll out per message type with no connection-level negotiation.
// A receiver that sees the binary flag on a type it has no binary decoder
// for (version skew) keeps the envelope and drops the payload, the same
// treatment an unknown-shaped JSON payload gets.
//
// The binary envelope orders its fields so everything except the Hops and
// Cover counters — which differ per broadcast recipient — forms a
// contiguous prefix, with the two counters as a varint trailer. A node
// fanning a broadcast out to N routing contacts therefore encodes the
// envelope and payload once and appends a fresh 2-varint trailer per
// contact; a node forwarding a received message re-sends the retained
// payload blob verbatim, never re-marshaling it (see internal/codec).
//
// Payload types are decoded lazily through the codec package's registry
// keyed by message type, so the same application structs flow over the
// wire that flow by reference under simulation, and a message that is
// only forwarded never materializes its payload at all.
package netwire

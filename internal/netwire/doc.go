// Package netwire carries overlay messages over real TCP connections —
// the live-deployment counterpart of simnet.
//
// # Architecture
//
// Send is an asynchronous enqueue: each destination endpoint gets a
// dedicated outbound queue drained by one writer goroutine that owns that
// peer's connection. Serializing all writes to a peer through one
// goroutine makes frame interleaving impossible by construction — any
// number of goroutines may call Send concurrently. Delivery failures
// (unreachable peer, write error after retries) are reported out of band
// through the OnSendFault callback; the overlay uses them as failure
// hints exactly as it used the seed's synchronous Send errors.
//
// The writer coalesces whatever is queued — up to MaxBatch messages —
// into a single multi-message frame, amortizing the syscall and frame
// overhead across the batch under load while adding no delay when the
// queue is shallow (a lone message ships immediately). Connections are
// established lazily and re-established with exponential backoff; reads
// and writes go through bufio. A writer whose queue stays empty past
// IdleTimeout retires — its goroutine, queue, and connection are
// released, and a later Send revives the peer transparently — so
// membership churn does not accumulate per-endpoint state forever.
//
// When a peer's queue is full, the backpressure policy decides: DropNewest
// (the default) discards the new message and counts it in Dropped —
// Corona's protocol tolerates loss the way it tolerates UDP loss, and the
// next maintenance round repairs — while Block makes Send wait for space,
// for callers that need lossless local handoff (tests, bulk transfers).
//
// # Wire protocol
//
// Each connection is one-directional: the dialer writes, the accepter
// reads. A connection opens with a one-byte hello naming the codec for
// every frame that follows:
//
//	'b'  compact binary envelope (codec.Binary, the default)
//	'j'  JSON envelope (codec.JSON, the seed format)
//
// After the hello, the stream is a sequence of frames:
//
//	+------------+-----------------+----------------------------------+
//	| length u32 | count uvarint   | count × (len uvarint + body)     |
//	+------------+-----------------+----------------------------------+
//
// length is the big-endian byte count of everything after it (count plus
// all message records); it is bounded by maxFrame. Each body is one
// overlay message encoded by the negotiated codec (see internal/codec for
// both envelope layouts). Messages within a frame, and frames within a
// connection, preserve the sender's enqueue order.
//
// Payload types are decoded through the codec package's registry keyed by
// message type, so the same application structs flow over the wire that
// flow by reference under simulation.
package netwire

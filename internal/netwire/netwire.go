package netwire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"corona/internal/codec"
	"corona/internal/pastry"
)

// maxFrame bounds a single frame (diffs are small; feeds are kilobytes —
// 16 MiB is generous). Batches larger than maxFrameFill split into
// multiple frames. frameOverhead is the worst-case header (count varint
// plus one length varint) a lone message adds to its frame; the sender
// bounds bodies by maxFrame-frameOverhead so every frame it builds
// passes the receiver's maxFrame check.
const (
	maxFrame      = 16 << 20
	maxFrameFill  = 1 << 20
	frameOverhead = 2 * binary.MaxVarintLen32
)

// Defaults for the tunables below.
const (
	defaultQueueLen     = 1024
	defaultMaxBatch     = 64
	defaultDialAttempts = 3
	defaultBackoffBase  = 50 * time.Millisecond
	defaultBackoffMax   = 2 * time.Second
	defaultIdleTimeout  = 2 * time.Minute
	bufSize             = 64 << 10
)

// RegisterPayload associates a message type with a payload constructor.
//
// Deprecated: the registry lives in the codec package now; this forwards
// to codec.RegisterPayload and remains for older call sites.
func RegisterPayload(msgType string, factory func() any) {
	codec.RegisterPayload(msgType, factory)
}

// BackpressurePolicy selects what Send does when a peer's outbound queue
// is full.
type BackpressurePolicy int

const (
	// DropNewest discards the message being sent and counts it in
	// Dropped. The overlay treats wire loss like UDP loss; periodic
	// maintenance repairs any state the lost message carried.
	DropNewest BackpressurePolicy = iota
	// Block makes Send wait until the queue has space (or the transport
	// closes). Use when local loss is unacceptable and callers can
	// tolerate stalling on a slow peer.
	Block
)

// Transport is a TCP-backed pastry.Transport with asynchronous, batched
// writes. The exported tunables must be set before the first Send; zero
// values select the defaults.
type Transport struct {
	listener net.Listener

	mu      sync.Mutex
	deliver func(pastry.Message)
	onFault func(pastry.Addr, error)
	peers   map[string]*peer
	inbound map[net.Conn]struct{}
	closed  bool
	// closing is closed on Close to wake writer goroutines blocked on
	// their queues or on reconnect backoff.
	closing chan struct{}

	// wireMu guards the byte-counter pair so WireBytes reads both sides
	// of one coherent total — two separate atomics let a scrape observe
	// a sent count from after a frame next to a received count from
	// before its response, a torn pair that breaks sent/received ratio
	// dashboards. Counter bumps are per-frame (alongside a syscall), so
	// the mutex adds nothing measurable.
	wireMu    sync.Mutex
	bytesSent uint64
	bytesRecv uint64
	dropCount atomic.Uint64

	// rng drives reconnect-backoff jitter; seeded per transport so
	// same-config transports spread their retry schedules apart. Guarded
	// by rngMu (multiple peer writers draw concurrently).
	rngMu sync.Mutex
	rng   *rand.Rand

	// DialTimeout and WriteTimeout bound blocking network operations.
	DialTimeout  time.Duration
	WriteTimeout time.Duration
	// Codec is the codec used for outbound connections (inbound codecs
	// are chosen by the remote dialer's hello byte). Nil means
	// codec.Default.
	Codec codec.Codec
	// QueueLen is the per-peer outbound queue depth.
	QueueLen int
	// MaxBatch caps how many queued messages one frame coalesces.
	MaxBatch int
	// Backpressure selects the full-queue policy for Send.
	Backpressure BackpressurePolicy
	// DialAttempts is how many connection attempts a writer makes per
	// batch before reporting a send fault.
	DialAttempts int
	// BackoffBase and BackoffMax bound the exponential backoff between
	// reconnect attempts.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// IdleTimeout is how long a peer's writer lingers with an empty
	// queue before retiring (releasing its goroutine, queue, and
	// connection). A later Send transparently revives the peer.
	IdleTimeout time.Duration
}

// Listen binds a TCP listener at bind (for example "127.0.0.1:9001") and
// returns a transport whose inbound messages go to deliver. Set deliver
// later with OnDeliver when the node is constructed after the transport.
func Listen(bind string, deliver func(pastry.Message)) (*Transport, error) {
	l, err := net.Listen("tcp", bind)
	if err != nil {
		return nil, fmt.Errorf("netwire: listen %s: %w", bind, err)
	}
	t := &Transport{
		listener:     l,
		deliver:      deliver,
		peers:        make(map[string]*peer),
		inbound:      make(map[net.Conn]struct{}),
		closing:      make(chan struct{}),
		DialTimeout:  3 * time.Second,
		WriteTimeout: 10 * time.Second,
	}
	go t.acceptLoop()
	return t, nil
}

// OnDeliver sets the inbound message handler.
func (t *Transport) OnDeliver(deliver func(pastry.Message)) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.deliver = deliver
}

// OnSendFault registers the callback invoked (from a writer goroutine)
// when delivery to a peer fails after retries. It implements
// pastry.AsyncTransport; the overlay evicts and repairs around the peer.
func (t *Transport) OnSendFault(f func(to pastry.Addr, err error)) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.onFault = f
}

// Addr returns the bound listener address ("host:port").
func (t *Transport) Addr() string {
	return t.listener.Addr().String()
}

// WireBytes returns total bytes written to and read from the network,
// implementing pastry.ByteCounter. The pair is read under one lock, so
// callers never see a torn sent/received combination.
func (t *Transport) WireBytes() (sent, received uint64) {
	t.wireMu.Lock()
	defer t.wireMu.Unlock()
	return t.bytesSent, t.bytesRecv
}

func (t *Transport) addBytesSent(n uint64) {
	t.wireMu.Lock()
	t.bytesSent += n
	t.wireMu.Unlock()
}

func (t *Transport) addBytesRecv(n uint64) {
	t.wireMu.Lock()
	t.bytesRecv += n
	t.wireMu.Unlock()
}

// retryPolicy is the resolved dial-retry configuration, shared by
// connect() (which spends the budget) and DialBudget (which advertises
// it) so the two cannot drift.
type retryPolicy struct {
	attempts          int
	dial, base, capAt time.Duration
}

func (t *Transport) retryPolicy() retryPolicy {
	r := retryPolicy{
		attempts: t.DialAttempts,
		dial:     t.DialTimeout,
		base:     t.BackoffBase,
		capAt:    t.BackoffMax,
	}
	if r.attempts <= 0 {
		r.attempts = defaultDialAttempts
	}
	if r.base <= 0 {
		r.base = defaultBackoffBase
	}
	if r.capAt <= 0 {
		r.capAt = defaultBackoffMax
	}
	return r
}

// next advances the exponential backoff, returning the maximum delay to
// wait before the given attempt (zero for the first). Actual reconnect
// waits are jittered below this cap (jitterDelay); DialBudget uses the
// cap directly, so it stays a true worst-case bound.
func (r *retryPolicy) next(attempt int, backoff time.Duration) time.Duration {
	if attempt == 0 {
		return 0
	}
	if backoff > r.capAt {
		return r.capAt
	}
	return backoff
}

// transportSeeds decorrelates transports created within one clock tick.
var transportSeeds atomic.Int64

// jitterDelay draws a randomized reconnect wait in [d/2, d]: half the
// deterministic backoff as a floor (the peer really is down; hammering
// helps nobody) plus a uniform jitter. Without it, every transport
// sharing a configuration retries a restarted peer on the identical
// schedule — the reconnect stampede arrives in synchronized waves.
func (t *Transport) jitterDelay(d time.Duration) time.Duration {
	if d <= 1 {
		return d
	}
	t.rngMu.Lock()
	if t.rng == nil {
		t.rng = rand.New(rand.NewSource(time.Now().UnixNano() + transportSeeds.Add(1)*1000003))
	}
	j := t.rng.Int63n(int64(d)/2 + 1)
	t.rngMu.Unlock()
	return d/2 + time.Duration(j)
}

// DialBudget returns the worst-case time a writer spends trying to reach
// a new peer before reporting a send fault: every dial attempt at its
// full timeout plus the backoff between attempts. Callers waiting on an
// asynchronous handshake (the live join path) should allow at least this
// long before failing over.
func (t *Transport) DialBudget() time.Duration {
	r := t.retryPolicy()
	total := time.Duration(r.attempts) * r.dial
	backoff := r.base
	for i := 1; i < r.attempts; i++ {
		total += r.next(i, backoff)
		backoff *= 2
	}
	return total
}

// Dropped returns how many messages were discarded locally: backpressure
// drops, encode failures, and messages abandoned when a peer stayed
// unreachable through the retry budget. It implements pastry.DropCounter.
func (t *Transport) Dropped() uint64 {
	return t.dropCount.Load()
}

// PeerQueues snapshots every live peer's outbound queue — instantaneous
// depth against capacity plus that peer's cumulative local drops —
// implementing pastry.QueueReporter. Retired (idle) peers drop out of the
// report; their drops remain in the transport-wide Dropped total.
func (t *Transport) PeerQueues() []pastry.PeerQueueStat {
	t.mu.Lock()
	peers := make([]*peer, 0, len(t.peers))
	for _, p := range t.peers {
		peers = append(peers, p)
	}
	t.mu.Unlock()
	out := make([]pastry.PeerQueueStat, len(peers))
	for i, p := range peers {
		out[i] = pastry.PeerQueueStat{
			Endpoint: p.endpoint,
			Depth:    len(p.queue),
			Capacity: cap(p.queue),
			Drops:    p.drops.Load(),
		}
	}
	return out
}

// Close shuts the listener, all writer goroutines, and every connection —
// outbound and accepted.
func (t *Transport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	close(t.closing)
	inbound := t.inbound
	t.inbound = map[net.Conn]struct{}{}
	t.mu.Unlock()
	for c := range inbound {
		c.Close()
	}
	return t.listener.Close()
}

func (t *Transport) acceptLoop() {
	for {
		conn, err := t.listener.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			conn.Close()
			return
		}
		t.inbound[conn] = struct{}{}
		t.mu.Unlock()
		go t.readLoop(conn)
	}
}

func (t *Transport) forgetInbound(conn net.Conn) {
	conn.Close()
	t.mu.Lock()
	delete(t.inbound, conn)
	t.mu.Unlock()
}

// readLoop decodes one connection's hello byte and frame stream,
// delivering every message in order.
func (t *Transport) readLoop(conn net.Conn) {
	defer t.forgetInbound(conn)
	br := bufio.NewReaderSize(conn, bufSize)
	hello, err := br.ReadByte()
	if err != nil {
		return
	}
	c := codec.ByID(hello)
	if c == nil {
		return // unknown codec; drop the connection
	}
	t.addBytesRecv(1)
	var lenBuf [4]byte
	for {
		if _, err := io.ReadFull(br, lenBuf[:]); err != nil {
			return
		}
		n := binary.BigEndian.Uint32(lenBuf[:])
		if n > maxFrame {
			return
		}
		body := make([]byte, n)
		if _, err := io.ReadFull(br, body); err != nil {
			return
		}
		t.addBytesRecv(uint64(4 + n))
		if !t.deliverFrame(c, body) {
			return
		}
	}
}

// deliverFrame parses a batch frame body and delivers its messages,
// reporting false on a malformed frame (the connection is dropped: after
// a framing error the stream position is unrecoverable). The handler is
// snapshotted once per frame, not per message, to keep the receive hot
// path off the transport mutex.
func (t *Transport) deliverFrame(c codec.Codec, body []byte) bool {
	t.mu.Lock()
	deliver := t.deliver
	closed := t.closed
	t.mu.Unlock()
	if closed {
		return false
	}
	count, off := binary.Uvarint(body)
	if off <= 0 {
		return false
	}
	rest := body[off:]
	for i := uint64(0); i < count; i++ {
		l, m := binary.Uvarint(rest)
		if m <= 0 || l > uint64(len(rest)-m) {
			return false
		}
		msgBody := rest[m : m+int(l)]
		rest = rest[m+int(l):]
		msg, err := c.Decode(msgBody)
		if err != nil {
			continue // skip one undecodable message, keep the stream
		}
		if deliver != nil {
			deliver(msg)
		}
	}
	return true
}

// Send implements pastry.Transport: a non-blocking enqueue on the
// destination's outbound queue. A nil return means the message was
// accepted locally, not that it was delivered; delivery failures arrive
// through OnSendFault. Send returns an error only when the transport is
// closed or the Block policy was interrupted by Close.
func (t *Transport) Send(to pastry.Addr, msg pastry.Message) error {
	for {
		p, err := t.peerFor(to.Endpoint)
		if err != nil {
			return err
		}
		ok, err := p.enqueue(to, msg)
		if err != nil {
			return err
		}
		if ok {
			return nil
		}
		// The peer retired between lookup and enqueue; loop to revive it.
	}
}

var errClosed = fmt.Errorf("netwire: transport closed")

// peerFor returns the peer state for an endpoint, creating its queue and
// writer goroutine on first use.
func (t *Transport) peerFor(endpoint string) (*peer, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil, errClosed
	}
	if p, ok := t.peers[endpoint]; ok {
		return p, nil
	}
	queueLen := t.QueueLen
	if queueLen <= 0 {
		queueLen = defaultQueueLen
	}
	p := &peer{
		t:        t,
		endpoint: endpoint,
		queue:    make(chan outMsg, queueLen),
	}
	t.peers[endpoint] = p
	go p.writeLoop()
	return p, nil
}

// fault invokes the registered send-fault callback on a fresh goroutine:
// the overlay's callback synchronously re-enters Send (repair sends state
// requests), and under the Block policy that could stall — or, with two
// writers faulting toward each other's full queues, deadlock — the writer
// that reported the fault.
func (t *Transport) fault(to pastry.Addr, err error) {
	t.mu.Lock()
	f := t.onFault
	t.mu.Unlock()
	if f != nil {
		go f(to, fmt.Errorf("%w: %v", pastry.ErrUnreachable, err))
	}
}

// codecFor returns the configured outbound codec.
func (t *Transport) codecFor() codec.Codec {
	if t.Codec != nil {
		return t.Codec
	}
	return codec.Default
}

// outMsg is one queued message with the full destination address kept for
// fault reporting (the overlay evicts by identifier, not endpoint).
type outMsg struct {
	to  pastry.Addr
	msg pastry.Message
}

// peer owns one destination's outbound path: a bounded queue and the
// writer goroutine that drains it onto a single connection. An idle
// writer retires — marks the peer dead, removes it from the transport,
// and exits — so churned-out endpoints do not pin goroutines forever.
type peer struct {
	t        *Transport
	endpoint string
	queue    chan outMsg

	// drops counts messages to this peer discarded locally (backpressure,
	// encode failure, exhausted retry budget); the transport-wide
	// dropCount accumulates the same events across all peers.
	drops atomic.Uint64

	// mu guards retired and is held across the queue insert, so
	// retirement (which requires an empty queue) cannot slip between an
	// enqueue's liveness check and its insert.
	mu      sync.Mutex
	retired bool
}

// drop records n locally discarded messages against this peer and the
// transport total.
func (p *peer) drop(n uint64) {
	p.drops.Add(n)
	p.t.dropCount.Add(n)
}

// enqueue applies the transport's backpressure policy. ok=false means
// the peer retired and the caller must fetch a fresh one.
func (p *peer) enqueue(to pastry.Addr, msg pastry.Message) (ok bool, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.retired {
		return false, nil
	}
	m := outMsg{to: to, msg: msg}
	if p.t.Backpressure == Block {
		//lint:allow lockblock Block policy deliberately parks the caller on the full queue; retire() only TryLocks this mutex, so no waiter deadlocks
		select {
		case p.queue <- m:
			return true, nil
		case <-p.t.closing:
			return false, errClosed
		}
	}
	select {
	case p.queue <- m:
		return true, nil
	case <-p.t.closing:
		return false, errClosed
	default:
		p.drop(1)
		return true, nil // backpressure loss is not a destination failure
	}
}

// retire removes the peer from the transport if its queue is empty,
// reporting whether the writer should exit. The peer mutex is only
// TryLock'd: a Block-policy enqueue parks on a full queue while holding
// it, so blocking here (with the transport mutex held) would freeze the
// writer that must drain that very queue — and with it every Send on the
// transport. Losing the race just means the writer stays alive for
// another idle period.
func (p *peer) retire() bool {
	p.t.mu.Lock()
	if !p.mu.TryLock() {
		p.t.mu.Unlock()
		return false // an enqueue is in flight; stay alive
	}
	if len(p.queue) == 0 {
		p.retired = true
		delete(p.t.peers, p.endpoint)
	}
	retired := p.retired
	p.mu.Unlock()
	p.t.mu.Unlock()
	return retired
}

// writeLoop drains the queue in batches onto the peer's connection,
// dialing lazily and reconnecting with exponential backoff. It is the
// only goroutine that ever writes to this peer, so concurrent Send calls
// cannot interleave partial frames.
func (p *peer) writeLoop() {
	maxBatch := p.t.MaxBatch
	if maxBatch <= 0 {
		maxBatch = defaultMaxBatch
	}
	c := p.t.codecFor()
	var conn net.Conn
	var bw *bufio.Writer
	defer func() {
		if conn != nil {
			conn.Close()
		}
	}()
	idle := p.t.IdleTimeout
	if idle <= 0 {
		idle = defaultIdleTimeout
	}
	idleTimer := time.NewTimer(idle)
	defer idleTimer.Stop()
	batch := make([]outMsg, 0, maxBatch)
	bodies := make([][]byte, 0, maxBatch)
	for {
		batch = batch[:0]
		if !idleTimer.Stop() {
			select {
			case <-idleTimer.C:
			default:
			}
		}
		idleTimer.Reset(idle)
		select {
		case m := <-p.queue:
			batch = append(batch, m)
		case <-idleTimer.C:
			if p.retire() {
				return
			}
			continue
		case <-p.t.closing:
			return
		}
	drain:
		for len(batch) < maxBatch {
			select {
			case m := <-p.queue:
				batch = append(batch, m)
			default:
				break drain
			}
		}

		bodies = bodies[:0]
		for _, m := range batch {
			body, err := c.Encode(m.msg)
			if err != nil || len(body) > maxFrame-frameOverhead {
				p.drop(1)
				continue
			}
			bodies = append(bodies, body)
		}
		if len(bodies) == 0 {
			continue
		}

		if conn == nil {
			var err error
			conn, bw, err = p.connect()
			if err != nil {
				if err == errClosed {
					return
				}
				p.t.fault(batch[len(batch)-1].to, err)
				p.drop(uint64(len(bodies)))
				continue
			}
		}
		if sent, err := p.writeFrames(conn, bw, bodies); err != nil {
			conn.Close()
			conn, bw = nil, nil
			// A write failure on an established connection usually means
			// the peer restarted since the last batch (the classic stale
			// connection): redial ONCE — a single attempt, not the full
			// backoff budget, so a genuinely dead peer still faults fast
			// — and retry the unsent remainder before dropping anything.
			remaining := bodies[sent:]
			var rerr error
			conn, bw, rerr = p.dialOnce(p.t.retryPolicy())
			if rerr == errClosed {
				return
			}
			if rerr == nil {
				var resent int
				if resent, rerr = p.writeFrames(conn, bw, remaining); rerr != nil {
					conn.Close()
					conn, bw = nil, nil
					remaining = remaining[resent:]
				} else {
					remaining = nil
				}
			}
			if len(remaining) > 0 {
				p.t.fault(batch[len(batch)-1].to, err)
				p.drop(uint64(len(remaining)))
			}
		}
	}
}

// connect dials the peer, retrying with exponential backoff up to the
// transport's attempt budget, and sends the codec hello byte.
func (p *peer) connect() (net.Conn, *bufio.Writer, error) {
	r := p.t.retryPolicy()
	backoff := r.base
	var lastErr error
	for attempt := 0; attempt < r.attempts; attempt++ {
		if wait := r.next(attempt, backoff); wait > 0 {
			select {
			case <-time.After(p.t.jitterDelay(wait)):
			case <-p.t.closing:
				return nil, nil, errClosed
			}
			backoff *= 2
		}
		conn, bw, err := p.dialOnce(r)
		if err != nil {
			lastErr = err
			continue
		}
		return conn, bw, nil
	}
	return nil, nil, lastErr
}

// dialOnce makes a single connection attempt and sends the hello byte.
func (p *peer) dialOnce(r retryPolicy) (net.Conn, *bufio.Writer, error) {
	select {
	case <-p.t.closing:
		return nil, nil, errClosed
	default:
	}
	conn, err := net.DialTimeout("tcp", p.endpoint, r.dial)
	if err != nil {
		return nil, nil, err
	}
	bw := bufio.NewWriterSize(conn, bufSize)
	if err := bw.WriteByte(p.t.codecFor().ID()); err != nil {
		conn.Close()
		return nil, nil, err
	}
	p.t.addBytesSent(1)
	return conn, bw, nil
}

// writeFrames packs encoded bodies into one or more frames (splitting
// when a batch exceeds maxFrameFill) and flushes them. It returns how
// many bodies reached the wire before any error.
func (p *peer) writeFrames(conn net.Conn, bw *bufio.Writer, bodies [][]byte) (int, error) {
	sent := 0
	for len(bodies) > 0 {
		n, size := 0, 0
		for n < len(bodies) {
			recSize := binary.MaxVarintLen32 + len(bodies[n])
			if n > 0 && size+recSize > maxFrameFill {
				break
			}
			size += recSize
			n++
		}
		frame := make([]byte, 4, 4+binary.MaxVarintLen32+size)
		frame = binary.AppendUvarint(frame, uint64(n))
		for _, body := range bodies[:n] {
			frame = binary.AppendUvarint(frame, uint64(len(body)))
			frame = append(frame, body...)
		}
		binary.BigEndian.PutUint32(frame[:4], uint32(len(frame)-4))

		if p.t.WriteTimeout > 0 {
			conn.SetWriteDeadline(time.Now().Add(p.t.WriteTimeout))
		}
		if _, err := bw.Write(frame); err != nil {
			return sent, err
		}
		if err := bw.Flush(); err != nil {
			return sent, err
		}
		p.t.addBytesSent(uint64(len(frame)))
		sent += n
		bodies = bodies[n:]
	}
	return sent, nil
}

// Package netwire carries overlay messages over real TCP connections —
// the live-deployment counterpart of simnet. Frames are length-prefixed
// JSON envelopes; payload types are decoded through a registry keyed by
// message type, so the same application structs flow over the wire that
// flow by reference under simulation.
package netwire

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"corona/internal/ids"
	"corona/internal/pastry"
)

// maxFrame bounds a single message frame (diffs are small; feeds are
// kilobytes — 16 MiB is generous).
const maxFrame = 16 << 20

// payloadFactories maps message types to constructors for their payload
// structs, letting the decoder produce typed payloads.
var (
	registryMu       sync.RWMutex
	payloadFactories = map[string]func() any{}
)

// RegisterPayload associates a message type with a payload constructor.
// Types without a registration decode their payload as map[string]any.
func RegisterPayload(msgType string, factory func() any) {
	registryMu.Lock()
	defer registryMu.Unlock()
	payloadFactories[msgType] = factory
}

// envelope is the wire form of pastry.Message with the payload kept raw
// until the type is known.
type envelope struct {
	Type    string          `json:"type"`
	Key     string          `json:"key,omitempty"`
	From    pastry.Addr     `json:"from"`
	Hops    int             `json:"hops,omitempty"`
	Cover   int             `json:"cover,omitempty"`
	Payload json.RawMessage `json:"payload,omitempty"`
}

// Transport is a TCP-backed pastry.Transport.
type Transport struct {
	self     pastry.Addr
	listener net.Listener
	deliver  func(pastry.Message)

	mu     sync.Mutex
	conns  map[string]net.Conn
	closed bool

	// DialTimeout and WriteTimeout bound blocking network operations.
	DialTimeout  time.Duration
	WriteTimeout time.Duration
}

// Listen binds a TCP listener at bind (for example "127.0.0.1:9001") and
// returns a transport whose inbound messages go to deliver. Set deliver
// later with OnDeliver when the node is constructed after the transport.
func Listen(bind string, deliver func(pastry.Message)) (*Transport, error) {
	l, err := net.Listen("tcp", bind)
	if err != nil {
		return nil, fmt.Errorf("netwire: listen %s: %w", bind, err)
	}
	t := &Transport{
		listener:     l,
		deliver:      deliver,
		conns:        make(map[string]net.Conn),
		DialTimeout:  3 * time.Second,
		WriteTimeout: 10 * time.Second,
	}
	go t.acceptLoop()
	return t, nil
}

// OnDeliver sets the inbound message handler.
func (t *Transport) OnDeliver(deliver func(pastry.Message)) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.deliver = deliver
}

// Addr returns the bound listener address ("host:port").
func (t *Transport) Addr() string {
	return t.listener.Addr().String()
}

// Close shuts the listener and all cached connections.
func (t *Transport) Close() error {
	t.mu.Lock()
	t.closed = true
	conns := t.conns
	t.conns = map[string]net.Conn{}
	t.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	return t.listener.Close()
}

func (t *Transport) acceptLoop() {
	for {
		conn, err := t.listener.Accept()
		if err != nil {
			return // listener closed
		}
		go t.readLoop(conn)
	}
}

func (t *Transport) readLoop(conn net.Conn) {
	defer conn.Close()
	for {
		msg, err := readFrame(conn)
		if err != nil {
			return
		}
		t.mu.Lock()
		deliver := t.deliver
		closed := t.closed
		t.mu.Unlock()
		if closed {
			return
		}
		if deliver != nil {
			deliver(msg)
		}
	}
}

// Send implements pastry.Transport.
func (t *Transport) Send(to pastry.Addr, msg pastry.Message) error {
	conn, err := t.connTo(to.Endpoint)
	if err != nil {
		return fmt.Errorf("%w: %v", pastry.ErrUnreachable, err)
	}
	frame, err := encodeFrame(msg)
	if err != nil {
		return err
	}
	conn.SetWriteDeadline(time.Now().Add(t.WriteTimeout))
	if _, err := conn.Write(frame); err != nil {
		t.dropConn(to.Endpoint, conn)
		return fmt.Errorf("%w: %v", pastry.ErrUnreachable, err)
	}
	return nil
}

func (t *Transport) connTo(endpoint string) (net.Conn, error) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, fmt.Errorf("transport closed")
	}
	if c, ok := t.conns[endpoint]; ok {
		t.mu.Unlock()
		return c, nil
	}
	t.mu.Unlock()

	c, err := net.DialTimeout("tcp", endpoint, t.DialTimeout)
	if err != nil {
		return nil, err
	}
	t.mu.Lock()
	if existing, ok := t.conns[endpoint]; ok {
		t.mu.Unlock()
		c.Close()
		return existing, nil
	}
	t.conns[endpoint] = c
	t.mu.Unlock()
	return c, nil
}

func (t *Transport) dropConn(endpoint string, conn net.Conn) {
	conn.Close()
	t.mu.Lock()
	if t.conns[endpoint] == conn {
		delete(t.conns, endpoint)
	}
	t.mu.Unlock()
}

// encodeFrame renders a message as a length-prefixed JSON frame.
func encodeFrame(msg pastry.Message) ([]byte, error) {
	var rawPayload json.RawMessage
	if msg.Payload != nil {
		b, err := json.Marshal(msg.Payload)
		if err != nil {
			return nil, fmt.Errorf("netwire: encoding payload of %s: %w", msg.Type, err)
		}
		rawPayload = b
	}
	env := envelope{
		Type:    msg.Type,
		From:    msg.From,
		Hops:    msg.Hops,
		Cover:   msg.Cover,
		Payload: rawPayload,
	}
	if !msg.Key.IsZero() {
		env.Key = msg.Key.String()
	}
	body, err := json.Marshal(env)
	if err != nil {
		return nil, fmt.Errorf("netwire: encoding envelope: %w", err)
	}
	if len(body) > maxFrame {
		return nil, fmt.Errorf("netwire: frame too large: %d bytes", len(body))
	}
	frame := make([]byte, 4+len(body))
	binary.BigEndian.PutUint32(frame, uint32(len(body)))
	copy(frame[4:], body)
	return frame, nil
}

// readFrame parses one frame into a message with a typed payload.
func readFrame(r io.Reader) (pastry.Message, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return pastry.Message{}, err
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n > maxFrame {
		return pastry.Message{}, fmt.Errorf("netwire: oversized frame %d", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return pastry.Message{}, err
	}
	var env envelope
	if err := json.Unmarshal(body, &env); err != nil {
		return pastry.Message{}, fmt.Errorf("netwire: decoding envelope: %w", err)
	}
	msg := pastry.Message{
		Type:  env.Type,
		From:  env.From,
		Hops:  env.Hops,
		Cover: env.Cover,
	}
	if env.Key != "" {
		key, err := ids.FromHex(env.Key)
		if err != nil {
			return pastry.Message{}, err
		}
		msg.Key = key
	}
	if len(env.Payload) > 0 {
		registryMu.RLock()
		factory := payloadFactories[env.Type]
		registryMu.RUnlock()
		if factory != nil {
			p := factory()
			if err := json.Unmarshal(env.Payload, p); err != nil {
				return pastry.Message{}, fmt.Errorf("netwire: decoding %s payload: %w", env.Type, err)
			}
			msg.Payload = p
		} else {
			var generic map[string]any
			if err := json.Unmarshal(env.Payload, &generic); err == nil {
				msg.Payload = generic
			}
		}
	}
	return msg, nil
}

package netwire

import (
	"testing"
	"time"
)

// TestReconnectBackoffJitterDesynchronizes pins the anti-stampede
// property: two transports with identical configuration must NOT retry a
// dead peer on identical schedules. Each draws its reconnect waits from
// a per-transport jittered range, so a restarted peer sees the herd
// arrive spread out rather than in synchronized waves.
func TestReconnectBackoffJitterDesynchronizes(t *testing.T) {
	schedule := func(tr *Transport) []time.Duration {
		r := tr.retryPolicy()
		var waits []time.Duration
		backoff := r.base
		for attempt := 1; attempt <= 8; attempt++ {
			waits = append(waits, tr.jitterDelay(r.next(attempt, backoff)))
			backoff *= 2
		}
		return waits
	}

	a := &Transport{BackoffBase: 50 * time.Millisecond, BackoffMax: 2 * time.Second}
	b := &Transport{BackoffBase: 50 * time.Millisecond, BackoffMax: 2 * time.Second}
	sa, sb := schedule(a), schedule(b)

	same := true
	for i := range sa {
		if sa[i] != sb[i] {
			same = false
		}
	}
	if same {
		t.Fatalf("identically configured transports produced identical retry schedules: %v", sa)
	}

	// Every jittered wait stays within [cap/2, cap], so DialBudget (which
	// sums the caps) remains a true worst-case bound.
	r := a.retryPolicy()
	backoff := r.base
	for i, w := range sa {
		capAt := r.next(i+1, backoff)
		if w < capAt/2 || w > capAt {
			t.Fatalf("attempt %d wait %v outside [%v, %v]", i+1, w, capAt/2, capAt)
		}
		backoff *= 2
	}
}

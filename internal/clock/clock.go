// Package clock abstracts time so that the Corona protocol stack runs
// unmodified under both the discrete-event simulator (virtual time) and a
// live deployment (wall-clock time).
package clock

import "time"

// Timer is a handle to a scheduled callback.
type Timer interface {
	// Stop cancels the timer. It reports whether the callback was
	// prevented from running (false if it already ran or was stopped).
	Stop() bool
}

// Clock supplies the current time and one-shot timers. Implementations:
// eventsim.Sim (virtual time) and clock.Real (wall time).
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// AfterFunc schedules f to run after d. f runs on the clock's
	// dispatch context: the simulator's event loop, or a goroutine for
	// the real clock.
	AfterFunc(d time.Duration, f func()) Timer
}

// Real is a Clock backed by the time package.
type Real struct{}

// Now returns the wall-clock time.
func (Real) Now() time.Time { return time.Now() }

// AfterFunc schedules f on a new goroutine after d.
func (Real) AfterFunc(d time.Duration, f func()) Timer {
	return time.AfterFunc(d, f)
}

package clientproto

import (
	"bytes"
	"encoding/binary"
	"io"
	"net"
	"reflect"
	"testing"
	"time"
)

// everyFrame is one instance of each frame type with every field set.
func everyFrame() []Frame {
	return []Frame{
		&Login{ReqID: 7, Handle: "alice", ResumeToken: []byte{1, 2, 3}},
		&Login{ReqID: 1, Handle: "bob"},
		&Subscribe{ReqID: 9, URL: "http://example.com/feed.xml"},
		&Unsubscribe{ReqID: 10, URL: "http://example.com/feed.xml"},
		&Ping{ReqID: 11},
		&LeaseRefresh{ReqID: 12, URLs: []string{"http://example.com/feed.xml", "http://x/g.xml"}},
		&LeaseRefresh{ReqID: 13},
		&Ack{ReqID: 7, Token: []byte{4, 5, 6, 7}},
		&Ack{ReqID: 9},
		&Nak{ReqID: 10, Reason: "handle in use"},
		&Notify{Channel: "http://x/f.xml", Version: 42, Diff: "CORONA-DIFF\n+line",
			At: time.Unix(1700000000, 123456789)},
		&ServerInfo{
			Node:  "10.0.0.1:9001",
			Peers: []string{"10.0.0.2:9001", "10.0.0.3:9001"},
			Store: StoreInfo{Enabled: true, Generation: 3, WALBytes: 4096,
				RecordsSinceSnapshot: 17, Err: "disk on fire"},
		},
		&ServerInfo{Node: "10.0.0.1:9001"},
		&ServerInfo{
			Node:      "10.0.0.1:9001",
			Peers:     []string{"10.0.0.2:9001"},
			HasFanout: true,
			Fanout: FanoutInfo{NotifyBatches: 12, DelegateUpdates: 4, DelegatesActive: 3,
				DelegatesHeld: 2, Undeliverable: 1, NotifyDropped: 9},
		},
		&ServerInfo{
			Node:             "10.0.0.1:9001",
			HasFanout:        true,
			Fanout:           FanoutInfo{NotifyBatches: 12},
			HasCommitLatency: true,
			CommitLatency:    []uint64{0, 3, 18, 4, 0, 0, 1, 0, 0, 0, 2},
		},
	}
}

func TestFrameRoundTrip(t *testing.T) {
	for _, f := range everyFrame() {
		wire := AppendFrame(nil, f)
		n := binary.BigEndian.Uint32(wire[:4])
		if int(n) != len(wire)-4 {
			t.Fatalf("%T: length prefix %d, body %d", f, n, len(wire)-4)
		}
		got, err := DecodeFrame(wire[4:])
		if err != nil {
			t.Fatalf("%T: decode: %v", f, err)
		}
		if !reflect.DeepEqual(got, f) {
			t.Fatalf("round trip mismatch:\n got %#v\nwant %#v", got, f)
		}
	}
}

func TestReadWriteFrame(t *testing.T) {
	var buf bytes.Buffer
	frames := everyFrame()
	for _, f := range frames {
		if err := WriteFrame(&buf, f); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range frames {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("stream round trip mismatch: got %#v want %#v", got, want)
		}
	}
	if _, err := ReadFrame(&buf); err != io.EOF {
		t.Fatalf("read past end: %v, want EOF", err)
	}
}

func TestDecodeRejectsHostileInput(t *testing.T) {
	// Truncation at every byte boundary of every frame must error — or,
	// for the legal cases (a ServerInfo cut exactly at an extension
	// boundary, where the shorter version's frame is itself valid),
	// decode canonically: the accepted prefix must re-encode to exactly
	// the bytes that decoded.
	for _, f := range everyFrame() {
		body := AppendFrame(nil, f)[4:]
		for cut := 0; cut < len(body); cut++ {
			got, err := DecodeFrame(body[:cut])
			if err == nil {
				if _, ok := got.(*ServerInfo); !ok {
					t.Fatalf("%T truncated to %d bytes decoded", f, cut)
				}
				if !bytes.Equal(AppendFrame(nil, got)[4:], body[:cut]) {
					t.Fatalf("%T truncated to %d bytes decoded non-canonically", f, cut)
				}
			}
		}
		// Trailing garbage is a framing error too.
		if _, err := DecodeFrame(append(append([]byte(nil), body...), 0xFF)); err == nil {
			t.Fatalf("%T with trailing byte decoded", f)
		}
	}
	if _, err := DecodeFrame([]byte{0x7F, 1, 2}); err == nil {
		t.Fatal("unknown frame type decoded")
	}
	if _, err := DecodeFrame(nil); err == nil {
		t.Fatal("empty body decoded")
	}
	// A hostile peer-list count claiming more entries than bytes.
	si := AppendFrame(nil, &ServerInfo{Node: "x"})[4:]
	hostile := append([]byte{si[0]}, si[1:3]...) // type + node "x"
	hostile = append(hostile, 0xFF, 0xFF, 0xFF, 0xFF, 0x0F)
	if _, err := DecodeFrame(hostile); err == nil {
		t.Fatal("hostile list count decoded")
	}
}

// TestServerInfoV2Compat pins the fan-out extension's compatibility
// contract: with HasFanout unset the encoding carries no extension bytes
// (what a version-2 peer must receive), and decoding such a frame leaves
// HasFanout false.
func TestServerInfoV2Compat(t *testing.T) {
	si := &ServerInfo{
		Node:  "10.0.0.1:9001",
		Peers: []string{"10.0.0.2:9001"},
		Store: StoreInfo{Enabled: true, Generation: 3, WALBytes: 4096, RecordsSinceSnapshot: 17},
	}
	plain := AppendFrame(nil, si)
	withExt := *si
	withExt.HasFanout = true
	withExt.Fanout = FanoutInfo{NotifyBatches: 1}
	ext := AppendFrame(nil, &withExt)
	if len(ext) <= len(plain) || ext[4] != plain[4] {
		t.Fatalf("extension added %d bytes over %d", len(ext), len(plain))
	}
	if !bytes.Equal(ext[5:len(plain)], plain[5:]) {
		t.Fatal("extension altered the version-2 prefix bytes")
	}
	got, err := DecodeFrame(plain[4:])
	if err != nil {
		t.Fatal(err)
	}
	if gsi := got.(*ServerInfo); gsi.HasFanout || gsi.Fanout != (FanoutInfo{}) {
		t.Fatalf("extension-free frame decoded with fan-out set: %+v", gsi)
	}
}

// TestServerInfoV3Compat pins the commit-latency extension's stacking
// contract: with HasCommitLatency unset the encoding is byte-identical to
// a version-3 frame, and a version-4 frame decodes with the histogram
// intact while its version-3 prefix bytes are unchanged.
func TestServerInfoV3Compat(t *testing.T) {
	v3 := &ServerInfo{
		Node:      "10.0.0.1:9001",
		HasFanout: true,
		Fanout:    FanoutInfo{NotifyBatches: 7, NotifyDropped: 1},
	}
	plain := AppendFrame(nil, v3)
	v4 := *v3
	v4.HasCommitLatency = true
	v4.CommitLatency = []uint64{0, 5, 12, 0, 1}
	ext := AppendFrame(nil, &v4)
	if len(ext) <= len(plain) {
		t.Fatalf("extension added no bytes: %d vs %d", len(ext), len(plain))
	}
	if !bytes.Equal(ext[5:len(plain)], plain[5:]) {
		t.Fatal("commit-latency extension altered the version-3 prefix bytes")
	}
	got, err := DecodeFrame(ext[4:])
	if err != nil {
		t.Fatal(err)
	}
	gsi := got.(*ServerInfo)
	if !gsi.HasCommitLatency || !reflect.DeepEqual(gsi.CommitLatency, v4.CommitLatency) {
		t.Fatalf("histogram did not round-trip: %+v", gsi)
	}
	if plainGot, err := DecodeFrame(plain[4:]); err != nil {
		t.Fatal(err)
	} else if psi := plainGot.(*ServerInfo); psi.HasCommitLatency || psi.CommitLatency != nil {
		t.Fatalf("extension-free frame decoded with commit latency set: %+v", psi)
	}
}

func TestReadFrameBoundsLength(t *testing.T) {
	var buf bytes.Buffer
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], MaxFrame+1)
	buf.Write(lenBuf[:])
	buf.Write(make([]byte, 64))
	if _, err := ReadFrame(&buf); err != ErrFrame {
		t.Fatalf("oversize frame: %v, want ErrFrame", err)
	}
	binary.BigEndian.PutUint32(lenBuf[:], 0)
	if _, err := ReadFrame(bytes.NewReader(lenBuf[:])); err != ErrFrame {
		t.Fatal("zero-length frame accepted")
	}
}

func TestHelloNegotiation(t *testing.T) {
	// Matching versions negotiate to Version.
	cEnd, sEnd := net.Pipe()
	defer cEnd.Close()
	defer sEnd.Close()
	type res struct {
		v   byte
		err error
	}
	srv := make(chan res, 1)
	go func() {
		v, err := Negotiate(sEnd)
		srv <- res{v, err}
	}()
	v, err := Hello(cEnd)
	if err != nil || v != Version {
		t.Fatalf("client negotiated (%d, %v), want (%d, nil)", v, err, Version)
	}
	if r := <-srv; r.err != nil || r.v != Version {
		t.Fatalf("server negotiated (%d, %v)", r.v, r.err)
	}

	// A future client (higher hello) is negotiated down to our Version.
	cEnd2, sEnd2 := net.Pipe()
	defer cEnd2.Close()
	defer sEnd2.Close()
	go func() {
		v, err := Negotiate(sEnd2)
		srv <- res{v, err}
	}()
	cEnd2.Write([]byte{Version + 9})
	var reply [1]byte
	io.ReadFull(cEnd2, reply[:])
	if reply[0] != Version {
		t.Fatalf("future client negotiated to %d, want %d", reply[0], Version)
	}
	if r := <-srv; r.err != nil || r.v != Version {
		t.Fatalf("server side: (%d, %v)", r.v, r.err)
	}

	// A zero hello is refused.
	cEnd3, sEnd3 := net.Pipe()
	defer cEnd3.Close()
	defer sEnd3.Close()
	go func() {
		v, err := Negotiate(sEnd3)
		srv <- res{v, err}
	}()
	cEnd3.Write([]byte{0})
	io.ReadFull(cEnd3, reply[:])
	if reply[0] != 0 {
		t.Fatalf("zero hello got reply %d, want 0", reply[0])
	}
	if r := <-srv; r.err == nil {
		t.Fatal("server accepted version 0")
	}
}

// FuzzDecodeFrame feeds the decoder hostile bodies: it must reject or
// round-trip, never panic, and an accepted frame must re-encode and
// decode to the same value (the canonicalization property the server
// relies on when it drops connections on ErrFrame).
func FuzzDecodeFrame(f *testing.F) {
	for _, fr := range everyFrame() {
		f.Add(AppendFrame(nil, fr)[4:])
	}
	f.Add([]byte{TypeNotify})
	f.Add([]byte{TypeServerInfo, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, body []byte) {
		fr, err := DecodeFrame(body)
		if err != nil {
			return
		}
		wire := AppendFrame(nil, fr)
		again, err := DecodeFrame(wire[4:])
		if err != nil {
			t.Fatalf("re-decode of accepted frame failed: %v", err)
		}
		if !reflect.DeepEqual(fr, again) {
			t.Fatalf("re-encode changed value: %#v vs %#v", fr, again)
		}
	})
}

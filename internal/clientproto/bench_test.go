package clientproto

import (
	"fmt"
	"testing"
	"time"

	"corona/internal/clock"
	"corona/internal/im"
)

// benchDiff approximates one RSS item diff (the common notification
// payload size in the deployment experiments).
var benchDiff = func() string {
	s := "CORONA-DIFF 3 7\n"
	for i := 0; i < 6; i++ {
		s += fmt.Sprintf("+<item><title>headline %d</title><link>http://example.com/%d</link></item>\n", i, i)
	}
	return s
}()

type nopSubscriber struct{}

func (nopSubscriber) Subscribe(client, url string) error   { return nil }
func (nopSubscriber) Unsubscribe(client, url string) error { return nil }

// BenchmarkClientNotifyEncode measures the raw frame encode of one
// structured notification — the per-subscriber marginal cost at the
// client edge.
func BenchmarkClientNotifyEncode(b *testing.B) {
	n := &Notify{Channel: "http://feeds.example.com/headlines.xml", Version: 42, Diff: benchDiff, At: time.Unix(1700000000, 0)}
	var buf []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = AppendFrame(buf[:0], n)
	}
	b.SetBytes(int64(len(buf)))
}

// BenchmarkClientGatewayFanout measures a channel update fanning out
// through the gateway's structured path to attached protocol clients,
// each encoding its Notify frame — the full gateway→clientproto encode
// pipeline per notification, without socket IO.
func BenchmarkClientGatewayFanout(b *testing.B) {
	for _, clients := range []int{1, 64, 1024} {
		b.Run(fmt.Sprintf("clients=%d", clients), func(b *testing.B) {
			service := im.NewService(clock.Real{})
			g := im.NewGateway(service, clock.Real{}, "corona", nopSubscriber{})
			handles := make([]string, clients)
			var sink int
			for i := range handles {
				handles[i] = fmt.Sprintf("user%d", i)
				var buf []byte
				g.Attach(handles[i], func(n im.Notification) {
					buf = AppendFrame(buf[:0], &Notify{Channel: n.Channel, Version: n.Version, Diff: n.Diff, At: n.At})
					sink += len(buf)
				})
			}
			const url = "http://feeds.example.com/headlines.xml"
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				v := uint64(i + 1)
				for _, h := range handles {
					g.Notify(h, url, v, benchDiff, time.Time{})
				}
			}
			b.StopTimer()
			if sink == 0 {
				b.Fatal("no frames encoded")
			}
			// Report per-notification cost, not per-update.
			perNotify := float64(b.Elapsed().Nanoseconds()) / float64(b.N*clients)
			b.ReportMetric(perNotify, "ns/notify")
		})
	}
}

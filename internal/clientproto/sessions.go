package clientproto

import (
	"bytes"
	"crypto/rand"
	"sync"
)

// SessionTable is the node-wide resume-token session registry, shared by
// every client-facing transport (the binary protocol server and the web
// gateway's WebSocket/SSE frontends), so the displacement and resumption
// semantics specified in this package's doc hold across transports: a
// handle has at most one live session per node regardless of how it
// connected, a newer login presenting the live session's token evicts
// the old connection wherever it attached, and a token minted over one
// transport resumes over another (a binary client falling back to SSE
// through a proxy keeps its session identity).
type SessionTable struct {
	mu       sync.Mutex
	sessions map[string]*TableSession
}

// TableSession is one live claim on a handle. Its pointer identity is
// the claim: End releases the handle only when the claimant still owns
// it, so a displaced session cannot end its successor.
type TableSession struct {
	token     []byte
	transport string
	evict     func()
}

// NewSessionTable returns an empty table.
func NewSessionTable() *SessionTable {
	return &SessionTable{sessions: make(map[string]*TableSession)}
}

// Begin claims handle for a new session on the named transport. A live
// session for the handle is displaced — its evict func called — only
// when the presented token matches its token; otherwise the claim is
// refused. With no live session, a presented token is adopted (failover
// resume on a node that never saw this client) and an empty one is
// replaced by a fresh mint; the returned token is what the client
// presents next time.
//
// attach runs under the table lock, making claim+attach one atomic step
// (a same-handle login racing in after the claim must not interleave its
// deliverer attachment with ours, or the survivor could end up
// deliverer-less); it must not call back into the table. Its return
// value — typically the gateway detach func — is handed back to the
// caller. evict is called under the lock too, when a LATER Begin
// displaces this session; it must only schedule the old connection's
// teardown (closing the socket is fine), never re-enter the table
// synchronously.
func (t *SessionTable) Begin(handle string, token []byte, transport string, evict func(), attach func() func()) (tok []byte, sess *TableSession, detach func(), ok bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if prev, live := t.sessions[handle]; live {
		if len(token) == 0 || !bytes.Equal(token, prev.token) {
			return nil, nil, nil, false
		}
		if prev.evict != nil {
			prev.evict() // stale connection; its teardown path cleans up
		}
	}
	if len(token) == 0 {
		token = make([]byte, tokenLen)
		rand.Read(token)
	}
	sess = &TableSession{token: token, transport: transport, evict: evict}
	t.sessions[handle] = sess
	if attach != nil {
		detach = attach()
	}
	return token, sess, detach, true
}

// End releases handle if sess still owns it.
func (t *SessionTable) End(handle string, sess *TableSession) {
	t.mu.Lock()
	if cur, ok := t.sessions[handle]; ok && cur == sess {
		delete(t.sessions, handle)
	}
	t.mu.Unlock()
}

// Len returns the number of live sessions across every transport.
func (t *SessionTable) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.sessions)
}

// Count returns the number of live sessions begun on one transport.
func (t *SessionTable) Count(transport string) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, s := range t.sessions {
		if s.transport == transport {
			n++
		}
	}
	return n
}

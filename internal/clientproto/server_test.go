package clientproto

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"corona/internal/im"
)

// fakeBackend records subscription calls and lets tests drive attached
// deliverers directly. Detach is identity-guarded like the gateway's: a
// displaced session's late detach must not remove its successor.
type attachRec struct {
	fn func(im.Notification)
}

type fakeBackend struct {
	mu         sync.Mutex
	subs       []string
	unsubs     []string
	leases     []string
	failSub    bool
	failLease  bool
	deliverers map[string]*attachRec
}

func newFakeBackend() *fakeBackend {
	return &fakeBackend{deliverers: make(map[string]*attachRec)}
}

func (b *fakeBackend) Subscribe(client, url string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.failSub {
		return fmt.Errorf("overlay down")
	}
	b.subs = append(b.subs, client+" "+url)
	return nil
}

func (b *fakeBackend) Unsubscribe(client, url string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.unsubs = append(b.unsubs, client+" "+url)
	return nil
}

func (b *fakeBackend) RefreshLeases(client string, urls []string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.failLease {
		return fmt.Errorf("overlay down")
	}
	for _, u := range urls {
		b.leases = append(b.leases, client+" "+u)
	}
	return nil
}

func (b *fakeBackend) Attach(client string, deliver func(im.Notification)) func() {
	rec := &attachRec{fn: deliver}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.deliverers[client] = rec
	return func() {
		b.mu.Lock()
		defer b.mu.Unlock()
		if b.deliverers[client] == rec {
			delete(b.deliverers, client)
		}
	}
}

func (b *fakeBackend) Info() ServerInfo {
	return ServerInfo{
		Node:  "overlay:1",
		Peers: []string{"overlay:2"},
		Store: StoreInfo{Enabled: true, Generation: 2, WALBytes: 512, RecordsSinceSnapshot: 5},
	}
}

func (b *fakeBackend) notify(client string, n im.Notification) bool {
	b.mu.Lock()
	rec, ok := b.deliverers[client]
	b.mu.Unlock()
	if ok {
		rec.fn(n)
	}
	return ok
}

func (b *fakeBackend) attached(client string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	_, ok := b.deliverers[client]
	return ok
}

// testClient is a minimal raw-protocol client for server tests.
type testClient struct {
	t    *testing.T
	conn net.Conn
}

func dialServer(t *testing.T, addr string) *testClient {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Hello(conn); err != nil {
		t.Fatal(err)
	}
	return &testClient{t: t, conn: conn}
}

func (c *testClient) send(f Frame) {
	c.t.Helper()
	if err := WriteFrame(c.conn, f); err != nil {
		c.t.Fatal(err)
	}
}

func (c *testClient) read() Frame {
	c.t.Helper()
	c.conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	f, err := ReadFrame(c.conn)
	if err != nil {
		c.t.Fatalf("read frame: %v", err)
	}
	return f
}

func startServer(t *testing.T, b Backend) *Server {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := Serve(l, b)
	t.Cleanup(func() { s.Close() })
	return s
}

func TestServerLoginSubscribeNotify(t *testing.T) {
	b := newFakeBackend()
	s := startServer(t, b)
	c := dialServer(t, s.Addr())
	defer c.conn.Close()

	c.send(&Login{ReqID: 1, Handle: "alice"})
	ack, ok := c.read().(*Ack)
	if !ok || ack.ReqID != 1 {
		t.Fatalf("login reply = %#v", ack)
	}
	if len(ack.Token) == 0 {
		t.Fatal("login ack carried no resume token")
	}
	si, ok := c.read().(*ServerInfo)
	if !ok || si.Node != "overlay:1" || !si.Store.Enabled || si.Store.WALBytes != 512 {
		t.Fatalf("post-login ServerInfo = %#v", si)
	}

	c.send(&Subscribe{ReqID: 2, URL: "http://x/f.xml"})
	if a, ok := c.read().(*Ack); !ok || a.ReqID != 2 {
		t.Fatalf("subscribe reply = %#v", a)
	}
	b.mu.Lock()
	subs := append([]string(nil), b.subs...)
	b.mu.Unlock()
	if len(subs) != 1 || subs[0] != "alice http://x/f.xml" {
		t.Fatalf("backend subs = %v", subs)
	}

	// A notification delivered through the attachment arrives as a frame.
	at := time.Unix(1700000000, 0)
	if !b.notify("alice", im.Notification{Client: "alice", Channel: "http://x/f.xml", Version: 3, Diff: "d", At: at}) {
		t.Fatal("alice not attached after login")
	}
	n, ok := c.read().(*Notify)
	if !ok || n.Channel != "http://x/f.xml" || n.Version != 3 || n.Diff != "d" || !n.At.Equal(at) {
		t.Fatalf("notify frame = %#v", n)
	}

	c.send(&Unsubscribe{ReqID: 3, URL: "http://x/f.xml"})
	if a, ok := c.read().(*Ack); !ok || a.ReqID != 3 {
		t.Fatalf("unsubscribe reply = %#v", a)
	}

	// Ping is acked and refreshes ServerInfo.
	c.send(&Ping{ReqID: 4})
	if a, ok := c.read().(*Ack); !ok || a.ReqID != 4 {
		t.Fatalf("ping reply = %#v", a)
	}
	if _, ok := c.read().(*ServerInfo); !ok {
		t.Fatal("no ServerInfo after ping")
	}
}

func TestServerRequiresLogin(t *testing.T) {
	b := newFakeBackend()
	s := startServer(t, b)
	c := dialServer(t, s.Addr())
	defer c.conn.Close()
	c.send(&Subscribe{ReqID: 1, URL: "http://x/f.xml"})
	nak, ok := c.read().(*Nak)
	if !ok || nak.ReqID != 1 {
		t.Fatalf("reply = %#v, want Nak", nak)
	}
}

func TestServerNaksFailedSubscribe(t *testing.T) {
	b := newFakeBackend()
	b.failSub = true
	s := startServer(t, b)
	c := dialServer(t, s.Addr())
	defer c.conn.Close()
	c.send(&Login{ReqID: 1, Handle: "alice"})
	c.read() // ack
	c.read() // server info
	c.send(&Subscribe{ReqID: 2, URL: "http://x/f.xml"})
	nak, ok := c.read().(*Nak)
	if !ok || nak.Reason != "overlay down" {
		t.Fatalf("reply = %#v, want Nak(overlay down)", nak)
	}
}

func TestServerResumeTokenDisplacesStaleSession(t *testing.T) {
	b := newFakeBackend()
	s := startServer(t, b)

	c1 := dialServer(t, s.Addr())
	defer c1.conn.Close()
	c1.send(&Login{ReqID: 1, Handle: "alice"})
	ack := c1.read().(*Ack)
	token := ack.Token
	c1.read() // server info

	// A second login without the token is refused.
	c2 := dialServer(t, s.Addr())
	defer c2.conn.Close()
	c2.send(&Login{ReqID: 1, Handle: "alice"})
	if nak, ok := c2.read().(*Nak); !ok {
		t.Fatalf("tokenless second login got %#v, want Nak", nak)
	}

	// With the token it displaces the stale session.
	c3 := dialServer(t, s.Addr())
	defer c3.conn.Close()
	c3.send(&Login{ReqID: 1, Handle: "alice", ResumeToken: token})
	ack3, ok := c3.read().(*Ack)
	if !ok {
		t.Fatalf("resume login refused")
	}
	if string(ack3.Token) != string(token) {
		t.Fatal("resume changed the token")
	}
	c3.read() // server info

	// The displaced connection is closed by the server.
	c1.conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	for {
		if _, err := ReadFrame(c1.conn); err != nil {
			break
		}
	}

	// The new session receives notifications.
	deadline := time.Now().Add(5 * time.Second)
	for !b.attached("alice") && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if !b.notify("alice", im.Notification{Client: "alice", Channel: "u", Version: 1}) {
		t.Fatal("alice not attached after displacement")
	}
	if n, ok := c3.read().(*Notify); !ok || n.Version != 1 {
		t.Fatalf("notify after displacement = %#v", n)
	}
}

func TestServerDropsMalformedStream(t *testing.T) {
	b := newFakeBackend()
	s := startServer(t, b)
	c := dialServer(t, s.Addr())
	defer c.conn.Close()
	// An unknown frame type drops the connection.
	c.conn.Write([]byte{0, 0, 0, 2, 0x7F, 0x00})
	c.conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := ReadFrame(c.conn); err == nil {
		t.Fatal("server kept a malformed stream alive")
	}
}

// TestServerLeaseRefresh covers the version-2 lease heartbeat frame: a
// logged-in client's refresh fans out to the backend and is acked, a
// refresh before login is naked, and a backend failure naks with its
// reason (the SDK's cue to fall back to Subscribe replay).
func TestServerLeaseRefresh(t *testing.T) {
	b := newFakeBackend()
	s := startServer(t, b)
	c := dialServer(t, s.Addr())
	defer c.conn.Close()

	c.send(&LeaseRefresh{ReqID: 1, URLs: []string{"http://x/f.xml"}})
	if nak, ok := c.read().(*Nak); !ok || nak.ReqID != 1 {
		t.Fatalf("pre-login lease refresh reply = %#v", nak)
	}

	c.send(&Login{ReqID: 2, Handle: "alice"})
	if a, ok := c.read().(*Ack); !ok || a.ReqID != 2 {
		t.Fatalf("login reply = %#v", a)
	}
	c.read() // ServerInfo

	c.send(&LeaseRefresh{ReqID: 3, URLs: []string{"http://x/f.xml", "http://x/g.xml"}})
	if a, ok := c.read().(*Ack); !ok || a.ReqID != 3 {
		t.Fatalf("lease refresh reply = %#v", a)
	}
	b.mu.Lock()
	leases := append([]string(nil), b.leases...)
	b.mu.Unlock()
	if len(leases) != 2 || leases[0] != "alice http://x/f.xml" || leases[1] != "alice http://x/g.xml" {
		t.Fatalf("backend leases = %v", leases)
	}

	b.mu.Lock()
	b.failLease = true
	b.mu.Unlock()
	c.send(&LeaseRefresh{ReqID: 4, URLs: []string{"http://x/f.xml"}})
	if nak, ok := c.read().(*Nak); !ok || nak.ReqID != 4 || nak.Reason == "" {
		t.Fatalf("failed lease refresh reply = %#v", nak)
	}
}

// TestServerCloseDrainsQueuedNotifies pins the graceful-shutdown
// contract: frames already queued to a connection's writer when Close is
// called are written and flushed — the client sees every one of them and
// then a clean EOF, not a connection torn mid-frame.
func TestServerCloseDrainsQueuedNotifies(t *testing.T) {
	b := newFakeBackend()
	s := startServer(t, b)
	c := dialServer(t, s.Addr())
	defer c.conn.Close()

	c.send(&Login{ReqID: 1, Handle: "alice"})
	if a, ok := c.read().(*Ack); !ok || a.ReqID != 1 {
		t.Fatalf("login reply = %#v", a)
	}
	c.read() // ServerInfo

	const queued = 32
	for v := uint64(1); v <= queued; v++ {
		if !b.notify("alice", im.Notification{Client: "alice", Channel: "u", Version: v}) {
			t.Fatal("alice not attached")
		}
	}
	done := make(chan error, 1)
	go func() { done <- s.Close() }()

	var got uint64
	for {
		c.conn.SetReadDeadline(time.Now().Add(5 * time.Second))
		f, err := ReadFrame(c.conn)
		if err != nil {
			break // clean end of stream after the drain
		}
		if n, ok := f.(*Notify); ok {
			if n.Version != got+1 {
				t.Fatalf("notify v%d after v%d: reordered or torn", n.Version, got)
			}
			got = n.Version
		}
	}
	if got != queued {
		t.Fatalf("drained %d of %d queued notifications before close", got, queued)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Close: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Close never returned")
	}
}

package clientproto

import (
	"fmt"
	"testing"
	"time"

	"corona/internal/clock"
	"corona/internal/im"
)

// BenchmarkFanoutNotifyBatch measures the encode-once batch path: one
// gateway NotifyBatch call fanning an update out to every attached
// protocol client, with the Notify frame encoded a single time into the
// batch's shared cell and the bytes reused by each per-connection
// deliverer — the marginal cost per client is one channel enqueue and no
// allocation, against BenchmarkClientGatewayFanout's per-client encode
// baseline. allocs/op is per batch and stays flat as clients grow.
func BenchmarkFanoutNotifyBatch(b *testing.B) {
	for _, clients := range []int{1, 64, 1024} {
		b.Run(fmt.Sprintf("clients=%d", clients), func(b *testing.B) {
			service := im.NewService(clock.Real{})
			g := im.NewGateway(service, clock.Real{}, "corona", nopSubscriber{})
			handles := make([]string, clients)
			// One deep buffered channel per client stands in for the
			// connection's outbound queue; frames are drained (and the
			// shared buffer length accumulated) between iterations.
			outs := make([]chan Frame, clients)
			var sink int
			for i := range handles {
				handles[i] = fmt.Sprintf("user%d", i)
				out := make(chan Frame, 1)
				outs[i] = out
				g.Attach(handles[i], func(n im.Notification) {
					// The server's batch deliverer: encode into the shared
					// cell once, reuse the bytes for every later recipient.
					sf, _ := n.Shared.Load(sharedKeyFrame).(*sharedFrame)
					if sf == nil {
						wire := AppendFrame(nil, &Notify{Channel: n.Channel, Version: n.Version, Diff: n.Diff, At: n.At})
						sf = &sharedFrame{buf: wire, oversize: len(wire)-4 > MaxFrame}
						n.Shared.Store(sharedKeyFrame, sf)
					}
					select {
					case out <- sf:
					default:
					}
				})
			}
			const url = "http://feeds.example.com/headlines.xml"
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g.NotifyBatch(handles, url, uint64(i+1), benchDiff, time.Time{})
				for _, out := range outs {
					sf := (<-out).(*sharedFrame)
					sink += len(sf.buf)
				}
			}
			b.StopTimer()
			if sink == 0 {
				b.Fatal("no frames delivered")
			}
			perNotify := float64(b.Elapsed().Nanoseconds()) / float64(b.N*clients)
			b.ReportMetric(perNotify, "ns/notify")
		})
	}
}

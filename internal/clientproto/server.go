package clientproto

import (
	"bufio"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"corona/internal/im"
)

// Server tunables.
const (
	// outQueueLen is the per-connection outbound frame queue depth.
	// Notifications to a client that cannot drain them are dropped
	// (and counted); control replies wait for space.
	outQueueLen = 256
	// writeTimeout bounds one frame write to a client.
	writeTimeout = 10 * time.Second
	// closeDrainTimeout bounds how long Close waits for per-connection
	// writer goroutines to flush their queued frames before force-closing
	// the sockets; a graceful node shutdown should not die mid-frame, but
	// neither should one wedged client hold the WAL flush hostage.
	closeDrainTimeout = 3 * time.Second
	// tokenLen is the resume-token size in bytes.
	tokenLen = 16
)

// Backend is the node surface the protocol server drives: subscription
// calls, structured-notification attachment, and the node's ServerInfo
// advertisement. corona.LiveNode implements it.
type Backend interface {
	// Subscribe registers a client's interest in a channel URL, with
	// this node as the client's entry point.
	Subscribe(client, url string) error
	// Unsubscribe removes it.
	Unsubscribe(client, url string) error
	// RefreshLeases heartbeats entry-node liveness for an attached
	// client's channels: each channel owner refreshes the subscriber's
	// lease and re-points its entry record at this node.
	RefreshLeases(client string, urls []string) error
	// Attach registers a structured-notification deliverer for client,
	// displacing any previous one; the returned detach removes it.
	Attach(client string, deliver func(im.Notification)) (detach func())
	// Info returns the node's current ServerInfo advertisement.
	Info() ServerInfo
}

// sharedFrame is a pre-encoded Notify frame shared across connections:
// the batch delivery path encodes the notification once (the frame body
// excludes the client handle, so the bytes are identical for every
// recipient) and enqueues the same pointer to each subscriber's writer,
// which writes buf directly instead of re-encoding. buf is the full wire
// form — length prefix, type byte, body — and is never mutated after
// encode. oversize marks a frame beyond MaxFrame, detected once.
type sharedFrame struct {
	buf      []byte
	oversize bool
}

// sharedKeyFrame keys this package's slot in a batch's im.Shared cell;
// other delivery layers (the web gateway's JSON encoding) hold their own
// slots in the same cell.
var sharedKeyFrame = new(byte)

func (f *sharedFrame) frameType() byte { return TypeNotify }
func (f *sharedFrame) appendBody(dst []byte) []byte {
	return append(dst, f.buf[5:]...) // skip length prefix + type byte
}

// TransportBinary is this server's transport name in the session table;
// the web gateway registers its sessions as "ws" and "sse".
const TransportBinary = "binary"

// Server accepts client-protocol connections on a listener and serves
// them against a Backend.
type Server struct {
	backend Backend
	table   *SessionTable

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool

	// serving counts live serveConn goroutines; Close waits for them so
	// per-connection writers drain their queued frames (and the caller
	// can flush the WAL) instead of dying mid-frame.
	serving sync.WaitGroup

	notifyDropped atomic.Uint64

	// notifyLatency, when set, observes the time from an update's
	// detection timestamp to the notification frame entering a client's
	// outbound queue — the last server-side stage of the hot path.
	notifyLatency atomic.Pointer[func(time.Duration)]
}

// Serve starts accepting connections from ln with a private session
// table. Close stops the server and every live connection.
func Serve(ln net.Listener, backend Backend) *Server {
	return ServeSessions(ln, backend, NewSessionTable())
}

// ServeSessions starts accepting connections from ln, registering
// sessions in the given table — share one table across transports so a
// handle has one live session per node however it connects.
func ServeSessions(ln net.Listener, backend Backend, table *SessionTable) *Server {
	s := &Server{
		backend:  backend,
		table:    table,
		listener: ln,
		conns:    make(map[net.Conn]struct{}),
	}
	go s.acceptLoop()
	return s
}

// Addr returns the listener address.
func (s *Server) Addr() string { return s.listener.Addr().String() }

// NotifyDropped returns how many notification frames were discarded
// because a client's outbound queue was full.
func (s *Server) NotifyDropped() uint64 { return s.notifyDropped.Load() }

// Sessions returns the number of live logged-in binary-protocol
// sessions (web-transport sessions in a shared table are not counted).
func (s *Server) Sessions() int {
	return s.table.Count(TransportBinary)
}

// SetNotifyLatencyObserver installs a callback observing, per delivered
// notification, the elapsed time between the update's detection
// timestamp and the frame entering the client's outbound queue. The
// admin plane wires it into the client_enqueue stage histogram.
func (s *Server) SetNotifyLatencyObserver(obs func(time.Duration)) {
	s.notifyLatency.Store(&obs)
}

// observeEnqueue records one enqueue-stage latency observation for a
// notification stamped at detection time at.
func (s *Server) observeEnqueue(at time.Time) {
	p := s.notifyLatency.Load()
	if p == nil || *p == nil || at.IsZero() {
		return
	}
	(*p)(time.Since(at))
}

// Close shuts the listener, asks every live connection to finish, and
// waits (bounded by closeDrainTimeout) for the per-connection writer
// goroutines to flush what they hold. Readers are unblocked with an
// expired read deadline rather than a hard close, so a frame mid-write
// completes instead of tearing; connections still alive after the drain
// window are force-closed.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	err := s.listener.Close()
	for _, c := range conns {
		c.SetReadDeadline(time.Now()) // reader unblocks; writer drains and flushes
	}
	drained := make(chan struct{})
	go func() {
		s.serving.Wait()
		close(drained)
	}()
	select {
	case <-drained:
	case <-time.After(closeDrainTimeout):
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		<-drained
	}
	return err
}

func (s *Server) acceptLoop() {
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.serving.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.serving.Done()
			s.serveConn(conn)
		}()
	}
}

func (s *Server) forget(conn net.Conn) {
	conn.Close()
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

// serveConn owns one connection: hello negotiation, then a read loop
// dispatching requests, with all writes funneled through one writer
// goroutine so notification delivery (from gateway goroutines) cannot
// interleave frames with request replies.
func (s *Server) serveConn(conn net.Conn) {
	defer s.forget(conn)
	ver, err := Negotiate(conn)
	if err != nil {
		return
	}

	// The out channel is never closed (late notification deliverers may
	// race past detach); the writer exits on readerDone and, after a write
	// error, keeps draining so no sender can block on a dead connection.
	out := make(chan Frame, outQueueLen)
	readerDone := make(chan struct{})
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		bw := bufio.NewWriter(conn)
		var buf []byte // reused encode buffer; frames are copied into bw
		dead := false
		// writeOne encodes and writes one frame (no flush), skipping
		// oversized ones: a frame beyond MaxFrame would make the client's
		// decoder drop the connection, so it is dropped here instead (a
		// >1MiB diff, in practice) and the lost notification counted.
		// Pre-encoded shared frames skip the encode entirely — their bytes
		// were built once for the whole batch (oversized ones never reach
		// the queue).
		writeOne := func(f Frame) {
			frame := buf
			if sf, ok := f.(*sharedFrame); ok {
				frame = sf.buf
			} else {
				buf = AppendFrame(buf[:0], f)
				if len(buf)-4 > MaxFrame {
					if _, isNotify := f.(*Notify); isNotify {
						s.notifyDropped.Add(1)
					}
					return
				}
				frame = buf
			}
			conn.SetWriteDeadline(time.Now().Add(writeTimeout))
			// Flush when the queue runs dry; consecutive frames coalesce
			// into one syscall.
			_, err := bw.Write(frame)
			if err == nil && len(out) == 0 {
				err = bw.Flush()
			}
			if err != nil {
				conn.Close() // unblocks the reader; it cleans up
				dead = true
			}
		}
		for {
			select {
			case f := <-out:
				if !dead {
					writeOne(f)
				}
			case <-readerDone:
				// Graceful exit: drain whatever the queue still holds —
				// a shutdown must not cut a notification stream mid-frame
				// — then flush once.
				for !dead {
					select {
					case f := <-out:
						writeOne(f)
					default:
						bw.Flush()
						return
					}
				}
				return
			}
		}
	}()
	defer func() { <-writerDone }()
	defer close(readerDone)

	// reply enqueues a control frame, waiting for space: acks and naks
	// are request-paced and must not be lost to a burst of notifications.
	// The writer drains even after a write error, so this cannot wedge.
	reply := func(f Frame) { out <- f }

	var handle string
	var sess *TableSession
	var detach func()
	defer func() {
		if detach != nil {
			detach()
		}
		if handle != "" {
			s.table.End(handle, sess)
		}
	}()

	br := bufio.NewReader(conn)
	for {
		f, err := ReadFrame(br)
		if err != nil {
			return // EOF, network error, or malformed frame: drop the conn
		}
		switch req := f.(type) {
		case *Login:
			if handle != "" {
				reply(&Nak{ReqID: req.ReqID, Reason: "already logged in as " + handle})
				continue
			}
			if req.Handle == "" {
				reply(&Nak{ReqID: req.ReqID, Reason: "empty handle"})
				continue
			}
			deliver := func(n im.Notification) {
				if n.Shared != nil {
					// Batch delivery: the first recipient's deliverer
					// encodes the frame into the batch's Shared cell; every
					// later recipient reuses the bytes. Deliverers for one
					// batch run sequentially on the gateway's goroutine, so
					// the cell needs no locking.
					sf, _ := n.Shared.Load(sharedKeyFrame).(*sharedFrame)
					if sf == nil {
						b := AppendFrame(nil, &Notify{Channel: n.Channel, Version: n.Version, Diff: n.Diff, At: n.At})
						sf = &sharedFrame{buf: b, oversize: len(b)-4 > MaxFrame}
						n.Shared.Store(sharedKeyFrame, sf)
					}
					if sf.oversize {
						s.notifyDropped.Add(1)
						return
					}
					select {
					case out <- sf:
						s.observeEnqueue(n.At)
					default:
						s.notifyDropped.Add(1)
					}
					return
				}
				nf := &Notify{Channel: n.Channel, Version: n.Version, Diff: n.Diff, At: n.At}
				select {
				case out <- nf:
					s.observeEnqueue(n.At)
				default:
					s.notifyDropped.Add(1)
				}
			}
			token, ts, det, ok := s.beginSession(req.Handle, req.ResumeToken, conn, deliver)
			if !ok {
				reply(&Nak{ReqID: req.ReqID, Reason: "handle in use (resume token mismatch)"})
				continue
			}
			handle, sess, detach = req.Handle, ts, det
			reply(&Ack{ReqID: req.ReqID, Token: token})
			reply(s.info(ver))
		case *Subscribe:
			s.subReply(req.ReqID, handle, req.URL, false, reply)
		case *Unsubscribe:
			s.subReply(req.ReqID, handle, req.URL, true, reply)
		case *LeaseRefresh:
			if handle == "" {
				reply(&Nak{ReqID: req.ReqID, Reason: "not logged in"})
				continue
			}
			if err := s.backend.RefreshLeases(handle, req.URLs); err != nil {
				reply(&Nak{ReqID: req.ReqID, Reason: err.Error()})
				continue
			}
			reply(&Ack{ReqID: req.ReqID})
		case *Ping:
			reply(&Ack{ReqID: req.ReqID})
			reply(s.info(ver))
		default:
			return // a server-to-client frame from a client: protocol error
		}
	}
}

// subReply runs one subscribe/unsubscribe request and acks or naks it.
func (s *Server) subReply(reqID uint64, handle, url string, remove bool, reply func(Frame)) {
	if handle == "" {
		reply(&Nak{ReqID: reqID, Reason: "not logged in"})
		return
	}
	if url == "" {
		reply(&Nak{ReqID: reqID, Reason: "empty url"})
		return
	}
	var err error
	if remove {
		err = s.backend.Unsubscribe(handle, url)
	} else {
		err = s.backend.Subscribe(handle, url)
	}
	if err != nil {
		reply(&Nak{ReqID: reqID, Reason: err.Error()})
		return
	}
	reply(&Ack{ReqID: reqID})
}

// info snapshots the backend's ServerInfo as a frame. Trailing
// extensions are stripped for connections older than the version that
// introduced them: their strict decoders treat the extra bytes as a
// malformed frame.
func (s *Server) info(ver byte) *ServerInfo {
	si := s.backend.Info()
	if ver < 3 {
		si.HasFanout = false
		si.Fanout = FanoutInfo{}
	}
	if ver < 4 {
		si.HasCommitLatency = false
		si.CommitLatency = nil
	}
	return &si
}

// beginSession claims handle for conn in the shared session table and
// attaches its notification deliverer in one atomic step (the table runs
// the attach under its lock: the gateway's lock is leaf-level, it never
// calls back into the server or the table, and the displaced session's
// own detach is identity-guarded, so claim+attach form one unit). The
// displacement/adoption token rules live in SessionTable.Begin.
func (s *Server) beginSession(handle string, token []byte, conn net.Conn, deliver func(im.Notification)) ([]byte, *TableSession, func(), bool) {
	return s.table.Begin(handle, token, TransportBinary,
		func() { conn.Close() }, // stale connection; its reader cleans up
		func() func() { return s.backend.Attach(handle, deliver) })
}

// Package clientproto is Corona's versioned, length-framed binary client
// protocol: the wire surface between a subscriber (the corona/client SDK)
// and one node's client port. It replaces the prototype's stringly IM
// line protocol as the primary ingress; the line protocol survives on a
// separate port as a thin adapter over the same gateway.
//
// # Hello and version negotiation
//
// A connection opens with a one-byte hello in each direction, mirroring
// netwire's codec hello. The client sends the highest protocol version it
// speaks; the server replies with the negotiated version — the minimum of
// the client's hello and the server's own maximum — and both sides then
// speak that version. A server reply of 0 means no common version; the
// connection is closed. Versions are cumulative: a version-v speaker
// understands every frame of versions 1..v. The current version is 3,
// which added the ServerInfo fan-out extension; version 2 added the
// LeaseRefresh frame, which a client that negotiated version 1 must not
// send (the SDK falls back to Subscribe replay).
//
// # Framing
//
// After the hello, the stream in both directions is a sequence of frames:
//
//	+------------+---------+----------------------+
//	| length u32 | type u8 | body (wirebin fields) |
//	+------------+---------+----------------------+
//
// length is the big-endian byte count of everything after it (type plus
// body) and is bounded by MaxFrame (1 MiB — bodies carry diffs, not
// feeds). A frame whose length exceeds the bound, whose type is unknown,
// or whose body does not decode exactly (short fields or trailing bytes)
// is a protocol error; the connection is dropped, since the stream
// position after a framing error is unrecoverable.
//
// Body fields use the wirebin conventions: unsigned LEB128 varints,
// varint-length-prefixed strings and byte strings, one-byte booleans.
//
// # Frames
//
// Client to server — every request carries a client-chosen request ID
// that the server echoes in exactly one Ack or Nak reply:
//
//	0x01 Login         req uvarint · handle string · resumeToken bytes
//	0x02 Subscribe     req uvarint · url string
//	0x03 Unsubscribe   req uvarint · url string
//	0x04 Ping          req uvarint
//	0x05 LeaseRefresh  req uvarint · urls list(string)        (version 2)
//
// Server to client:
//
//	0x10 Ack          req uvarint · token bytes (non-empty only for Login)
//	0x11 Nak          req uvarint · reason string
//	0x12 Notify       channel string · version uvarint · diff string ·
//	                  at uvarint (Unix nanoseconds)
//	0x13 ServerInfo   node string · peers list(string) ·
//	                  store: enabled bool · generation uvarint ·
//	                  walBytes uvarint · recordsSinceSnapshot uvarint ·
//	                  err string ·
//	                  [ fanout: notifyBatches uvarint ·
//	                    delegateUpdates uvarint · delegatesActive uvarint ·
//	                    delegatesHeld uvarint · undeliverable uvarint ·
//	                    notifyDropped uvarint ]              (version 3)
//
// The bracketed fan-out extension is a trailing block a version-3 server
// appends to ServerInfo: the node's update fan-out accounting (batched
// notification sends, delegate disseminations and partitions held, and
// the gateway's undeliverable/dropped counters — see FanoutInfo). Its
// absence is the version-2 byte form, so a version-2 frame decodes
// unchanged and a version-2 client simply never sees the extension.
//
// # Sessions and resumption
//
// Login binds the connection to a handle. The Ack for a first login (empty
// resumeToken) carries a server-minted token; the client presents it on
// every later Login. The token is a session-displacement guard, not
// authentication (the system has none, like the prototype's IM buddy): a
// Login for a handle with a live session on the same node is refused
// unless it presents the live session's token, in which case the stale
// connection is closed and the new one takes over — the half-open socket
// a crashed client leaves behind cannot lock its handle out. A node that
// has no live session for the handle accepts any token and adopts it, so
// a client failing over to a sibling node resumes with the token it
// already holds.
//
// Subscriptions live in the overlay (at the channel's owner), not in the
// session. A version-2 client reconnecting after failover sends one
// LeaseRefresh listing its subscription set instead of replaying
// Subscribe frames: the serving node routes an entry-node lease
// heartbeat to each channel's owner, which refreshes the subscriber's
// lease, re-points its entry record at this node, and — being an
// idempotent subscription assert — re-creates the subscription if an
// in-memory owner lost it. The SDK repeats the LeaseRefresh on every
// ping tick, which is what keeps the owner-side lease alive; an owner
// whose lease for a subscriber expires (its entry node died without the
// client reappearing) proactively re-routes the entry record to a
// surviving node. The durable store (internal/store) remains the server
// half of failover; against a version-1 server the SDK falls back to the
// old Subscribe replay.
//
// After a successful Login, and again after every Ping ack, the server
// pushes a ServerInfo frame: the node's advertised overlay endpoint, the
// overlay endpoints of its leaf-set siblings (operator-visible topology,
// not dialable client ports), and the durable store's health — WAL size,
// records since the last snapshot, and the latched IO error, empty when
// the store is healthy or the node runs in-memory.
//
// Notify frames are unacknowledged and may arrive at any time after
// Login; ordering is per-channel by version, with no cross-channel
// guarantee. When one update fans out to many clients of the same node
// (the gateway's NotifyBatch path), the server encodes the Notify frame
// once into the batch's shared cell and every connection writes the same
// buffer — the marginal cost per recipient is an enqueue, not an encode.
package clientproto

package clientproto

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"

	"corona/internal/wirebin"
)

// Version is the highest protocol version this package speaks.
// Version 2 added the LeaseRefresh frame (entry-node lease heartbeats).
// Version 3 added the ServerInfo fan-out extension (FanoutInfo); frames
// are otherwise unchanged, so the negotiation only gates whether the
// server appends the extension fields.
// Version 4 added the ServerInfo commit-latency extension (the durable
// store's group-commit histogram), stacked after the fan-out fields the
// same trailing-bytes way.
const Version = 4

// MaxFrame bounds one frame's type+body byte count.
const MaxFrame = 1 << 20

// Frame type bytes (doc.go).
const (
	TypeLogin        = 0x01
	TypeSubscribe    = 0x02
	TypeUnsubscribe  = 0x03
	TypePing         = 0x04
	TypeLeaseRefresh = 0x05 // version 2
	TypeAck          = 0x10
	TypeNak          = 0x11
	TypeNotify       = 0x12
	TypeServerInfo   = 0x13
)

// ErrFrame is returned for malformed frames: unknown type, short body,
// trailing bytes, or a length beyond MaxFrame.
var ErrFrame = errors.New("clientproto: malformed frame")

// Frame is one protocol message in either direction.
type Frame interface {
	frameType() byte
	appendBody(dst []byte) []byte
}

// Login binds the connection to a handle; ResumeToken is empty on first
// login and the previously issued token on resumption.
type Login struct {
	ReqID       uint64
	Handle      string
	ResumeToken []byte
}

// Subscribe requests a channel subscription for the logged-in handle.
type Subscribe struct {
	ReqID uint64
	URL   string
}

// Unsubscribe removes one.
type Unsubscribe struct {
	ReqID uint64
	URL   string
}

// Ping is a liveness probe; the server acks it and refreshes ServerInfo.
type Ping struct {
	ReqID uint64
}

// LeaseRefresh (version 2) asserts that the logged-in handle is alive on
// this connection and still wants the listed channels. The serving node
// forwards each assertion to the channel's owner as an entry-node lease
// heartbeat, which refreshes the subscriber's lease and re-points its
// entry record at this node — so a failed-over client needs no
// Subscribe replay. The SDK sends one after login on a reconnect and on
// every ping tick.
type LeaseRefresh struct {
	ReqID uint64
	URLs  []string
}

// Ack is the success reply to a request. Token is non-empty only on
// Login acks: the session's resume token.
type Ack struct {
	ReqID uint64
	Token []byte
}

// Nak is the failure reply to a request.
type Nak struct {
	ReqID  uint64
	Reason string
}

// Notify is one structured update notification.
type Notify struct {
	Channel string
	Version uint64
	Diff    string
	At      time.Time
}

// StoreInfo is the durable store's health as advertised in ServerInfo.
type StoreInfo struct {
	// Enabled is false for in-memory nodes; the remaining fields are
	// then zero.
	Enabled bool
	// Generation is the current snapshot/WAL generation.
	Generation uint64
	// WALBytes is the current write-ahead log's size.
	WALBytes uint64
	// RecordsSinceSnapshot counts WAL records appended since the last
	// compaction (what a restart would replay).
	RecordsSinceSnapshot uint64
	// Err is the store's latched IO error, empty when healthy.
	Err string
}

// FanoutInfo is the serving node's update fan-out accounting, advertised
// in ServerInfo since version 3.
type FanoutInfo struct {
	// NotifyBatches counts batched notification sends this node issued to
	// entry nodes (its own gateway included).
	NotifyBatches uint64
	// DelegateUpdates counts per-delegate update disseminations sent by
	// sharded channels this node owns.
	DelegateUpdates uint64
	// DelegatesActive counts delegates currently recruited across the
	// channels this node owns.
	DelegatesActive uint64
	// DelegatesHeld counts channels this node holds a delegate partition
	// for on some other owner's behalf.
	DelegatesHeld uint64
	// Undeliverable counts notifications that found neither an attached
	// deliverer nor an IM account for their client.
	Undeliverable uint64
	// NotifyDropped counts notification frames discarded because a
	// client's outbound queue was full (or a frame was oversized).
	NotifyDropped uint64
}

// ServerInfo advertises the serving node and its view of the ring.
type ServerInfo struct {
	// Node is the serving node's advertised overlay endpoint.
	Node string
	// Peers are the overlay endpoints of the node's leaf-set siblings —
	// operator-visible topology, not dialable client ports.
	Peers []string
	// Store is the durable store's health.
	Store StoreInfo
	// HasFanout reports whether Fanout carries data. Encoding appends the
	// fan-out fields only when set, which keeps the version-2 byte form
	// intact; decoding sets it when the extension bytes are present.
	HasFanout bool
	// Fanout is the fan-out accounting (version 3).
	Fanout FanoutInfo
	// HasCommitLatency gates the version-4 trailing extension below; it
	// can only be encoded when HasFanout is also set (extensions stack
	// in version order).
	HasCommitLatency bool
	// CommitLatency is the durable store's fixed-bucket group-commit
	// latency histogram (store.CommitLatencyBounds order, final element
	// the overflow bucket); empty for in-memory nodes.
	CommitLatency []uint64
}

func (f *Login) frameType() byte        { return TypeLogin }
func (f *Subscribe) frameType() byte    { return TypeSubscribe }
func (f *Unsubscribe) frameType() byte  { return TypeUnsubscribe }
func (f *Ping) frameType() byte         { return TypePing }
func (f *LeaseRefresh) frameType() byte { return TypeLeaseRefresh }
func (f *Ack) frameType() byte          { return TypeAck }
func (f *Nak) frameType() byte          { return TypeNak }
func (f *Notify) frameType() byte       { return TypeNotify }
func (f *ServerInfo) frameType() byte   { return TypeServerInfo }

func (f *Login) appendBody(dst []byte) []byte {
	dst = wirebin.AppendUvarint(dst, f.ReqID)
	dst = wirebin.AppendString(dst, f.Handle)
	return wirebin.AppendBytes(dst, f.ResumeToken)
}

func (f *Subscribe) appendBody(dst []byte) []byte {
	dst = wirebin.AppendUvarint(dst, f.ReqID)
	return wirebin.AppendString(dst, f.URL)
}

func (f *Unsubscribe) appendBody(dst []byte) []byte {
	dst = wirebin.AppendUvarint(dst, f.ReqID)
	return wirebin.AppendString(dst, f.URL)
}

func (f *Ping) appendBody(dst []byte) []byte {
	return wirebin.AppendUvarint(dst, f.ReqID)
}

func (f *LeaseRefresh) appendBody(dst []byte) []byte {
	dst = wirebin.AppendUvarint(dst, f.ReqID)
	dst = wirebin.AppendUvarint(dst, uint64(len(f.URLs)))
	for _, u := range f.URLs {
		dst = wirebin.AppendString(dst, u)
	}
	return dst
}

func (f *Ack) appendBody(dst []byte) []byte {
	dst = wirebin.AppendUvarint(dst, f.ReqID)
	return wirebin.AppendBytes(dst, f.Token)
}

func (f *Nak) appendBody(dst []byte) []byte {
	dst = wirebin.AppendUvarint(dst, f.ReqID)
	return wirebin.AppendString(dst, f.Reason)
}

func (f *Notify) appendBody(dst []byte) []byte {
	dst = wirebin.AppendString(dst, f.Channel)
	dst = wirebin.AppendUvarint(dst, f.Version)
	dst = wirebin.AppendString(dst, f.Diff)
	return wirebin.AppendUvarint(dst, uint64(f.At.UnixNano()))
}

func (f *ServerInfo) appendBody(dst []byte) []byte {
	dst = wirebin.AppendString(dst, f.Node)
	dst = wirebin.AppendUvarint(dst, uint64(len(f.Peers)))
	for _, p := range f.Peers {
		dst = wirebin.AppendString(dst, p)
	}
	dst = wirebin.AppendBool(dst, f.Store.Enabled)
	dst = wirebin.AppendUvarint(dst, f.Store.Generation)
	dst = wirebin.AppendUvarint(dst, f.Store.WALBytes)
	dst = wirebin.AppendUvarint(dst, f.Store.RecordsSinceSnapshot)
	dst = wirebin.AppendString(dst, f.Store.Err)
	if !f.HasFanout {
		return dst
	}
	dst = wirebin.AppendUvarint(dst, f.Fanout.NotifyBatches)
	dst = wirebin.AppendUvarint(dst, f.Fanout.DelegateUpdates)
	dst = wirebin.AppendUvarint(dst, f.Fanout.DelegatesActive)
	dst = wirebin.AppendUvarint(dst, f.Fanout.DelegatesHeld)
	dst = wirebin.AppendUvarint(dst, f.Fanout.Undeliverable)
	dst = wirebin.AppendUvarint(dst, f.Fanout.NotifyDropped)
	if !f.HasCommitLatency {
		return dst
	}
	dst = wirebin.AppendUvarint(dst, uint64(len(f.CommitLatency)))
	for _, c := range f.CommitLatency {
		dst = wirebin.AppendUvarint(dst, c)
	}
	return dst
}

// AppendFrame appends f's full wire form — u32 big-endian length, type
// byte, body — to dst and returns it.
func AppendFrame(dst []byte, f Frame) []byte {
	lenAt := len(dst)
	dst = append(dst, 0, 0, 0, 0)
	dst = append(dst, f.frameType())
	dst = f.appendBody(dst)
	binary.BigEndian.PutUint32(dst[lenAt:], uint32(len(dst)-lenAt-4))
	return dst
}

// DecodeFrame decodes one frame body (type byte plus fields, without the
// length prefix). The decode is strict: short fields, trailing bytes, and
// unknown types return ErrFrame.
func DecodeFrame(body []byte) (Frame, error) {
	if len(body) == 0 {
		return nil, ErrFrame
	}
	r := wirebin.NewReader(body[1:])
	var f Frame
	switch body[0] {
	case TypeLogin:
		f = &Login{ReqID: r.Uvarint(), Handle: r.String(), ResumeToken: cloned(r.Bytes())}
	case TypeSubscribe:
		f = &Subscribe{ReqID: r.Uvarint(), URL: r.String()}
	case TypeUnsubscribe:
		f = &Unsubscribe{ReqID: r.Uvarint(), URL: r.String()}
	case TypePing:
		f = &Ping{ReqID: r.Uvarint()}
	case TypeLeaseRefresh:
		lr := &LeaseRefresh{ReqID: r.Uvarint()}
		if n := r.ListLen(1); n > 0 {
			lr.URLs = make([]string, 0, n)
			for i := 0; i < n; i++ {
				lr.URLs = append(lr.URLs, r.String())
			}
		}
		f = lr
	case TypeAck:
		f = &Ack{ReqID: r.Uvarint(), Token: cloned(r.Bytes())}
	case TypeNak:
		f = &Nak{ReqID: r.Uvarint(), Reason: r.String()}
	case TypeNotify:
		n := &Notify{Channel: r.String(), Version: r.Uvarint(), Diff: r.String()}
		n.At = time.Unix(0, int64(r.Uvarint()))
		f = n
	case TypeServerInfo:
		si := &ServerInfo{Node: r.String()}
		if n := r.ListLen(1); n > 0 {
			si.Peers = make([]string, 0, n)
			for i := 0; i < n; i++ {
				si.Peers = append(si.Peers, r.String())
			}
		}
		si.Store = StoreInfo{
			Enabled:              r.Bool(),
			Generation:           r.Uvarint(),
			WALBytes:             r.Uvarint(),
			RecordsSinceSnapshot: r.Uvarint(),
			Err:                  r.String(),
		}
		if r.Err() == nil && r.Len() > 0 {
			// Version-3 fan-out extension: present iff bytes remain.
			si.HasFanout = true
			si.Fanout = FanoutInfo{
				NotifyBatches:   r.Uvarint(),
				DelegateUpdates: r.Uvarint(),
				DelegatesActive: r.Uvarint(),
				DelegatesHeld:   r.Uvarint(),
				Undeliverable:   r.Uvarint(),
				NotifyDropped:   r.Uvarint(),
			}
		}
		if r.Err() == nil && r.Len() > 0 {
			// Version-4 commit-latency extension.
			si.HasCommitLatency = true
			if n := r.ListLen(1); n > 0 {
				si.CommitLatency = make([]uint64, 0, n)
				for i := 0; i < n; i++ {
					si.CommitLatency = append(si.CommitLatency, r.Uvarint())
				}
			}
		}
		f = si
	default:
		return nil, ErrFrame
	}
	if r.Err() != nil || r.Len() != 0 {
		return nil, ErrFrame
	}
	return f, nil
}

// cloned copies a Reader-aliased byte slice so decoded frames do not
// retain the read buffer (nil stays nil).
func cloned(b []byte) []byte {
	if b == nil {
		return nil
	}
	return append([]byte(nil), b...)
}

// WriteFrame writes f's wire form to w.
func WriteFrame(w io.Writer, f Frame) error {
	_, err := w.Write(AppendFrame(nil, f))
	return err
}

// ReadFrame reads and decodes one frame from r.
func ReadFrame(r io.Reader) (Frame, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n == 0 || n > MaxFrame {
		return nil, ErrFrame
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	return DecodeFrame(body)
}

// Negotiate runs the server side of the hello exchange on conn-like rw:
// it reads the client's version byte and replies with the negotiated
// version, returning it. A client hello of 0 is refused (reply 0, error).
func Negotiate(rw io.ReadWriter) (byte, error) {
	var hello [1]byte
	if _, err := io.ReadFull(rw, hello[:]); err != nil {
		return 0, err
	}
	v := hello[0]
	if v > Version {
		v = Version
	}
	if _, err := rw.Write([]byte{v}); err != nil {
		return 0, err
	}
	if v == 0 {
		return 0, fmt.Errorf("clientproto: no common protocol version")
	}
	return v, nil
}

// Hello runs the client side of the hello exchange: it offers Version and
// returns the server's negotiated choice.
func Hello(rw io.ReadWriter) (byte, error) {
	if _, err := rw.Write([]byte{Version}); err != nil {
		return 0, err
	}
	var reply [1]byte
	if _, err := io.ReadFull(rw, reply[:]); err != nil {
		return 0, err
	}
	if reply[0] == 0 || reply[0] > Version {
		return 0, fmt.Errorf("clientproto: server refused version (replied %d)", reply[0])
	}
	return reply[0], nil
}

// Package wirebin holds the primitive append/read operations shared by
// Corona's native binary wire formats: the codec package's message
// envelope and the per-type payload encoders in core and honeycomb.
//
// Conventions: integers are unsigned LEB128 varints, byte strings are
// varint-length-prefixed, float64s are fixed 8-byte little-endian IEEE 754
// bit patterns (bit-exact and byte-stable, unlike a decimal rendering),
// and booleans are one byte (0 or 1). Append functions grow dst and
// return it, in the append-style idiom; reads go through a Reader cursor
// that latches the first error so decoders can read a whole record
// straight through and check once.
package wirebin

import (
	"encoding/binary"
	"errors"
	"math"
)

// ErrShort is latched by a Reader that runs out of bytes or hits a
// malformed varint.
var ErrShort = errors.New("wirebin: short or malformed buffer")

// AppendUvarint appends v as an unsigned LEB128 varint.
func AppendUvarint(dst []byte, v uint64) []byte {
	return binary.AppendUvarint(dst, v)
}

// AppendSint appends v as a zigzag-encoded signed varint, for integer
// fields that may legitimately be negative (levels, rows).
func AppendSint(dst []byte, v int) []byte {
	return binary.AppendVarint(dst, int64(v))
}

// AppendBytes appends a varint length prefix followed by b.
func AppendBytes(dst, b []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

// AppendString appends s with a varint length prefix.
func AppendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// AppendFloat64 appends the fixed 8-byte little-endian bit pattern of f.
func AppendFloat64(dst []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(f))
}

// AppendBool appends one byte: 1 for true, 0 for false.
func AppendBool(dst []byte, b bool) []byte {
	if b {
		return append(dst, 1)
	}
	return append(dst, 0)
}

// Reader is a cursor over an encoded buffer that latches the first error:
// after a short read every subsequent call returns zero values, and Err
// reports what went wrong.
type Reader struct {
	buf []byte
	err error
}

// NewReader returns a cursor over buf. The returned values of Bytes and
// Take alias buf; callers that retain them must treat buf as immutable.
func NewReader(buf []byte) *Reader {
	return &Reader{buf: buf}
}

// Err returns the latched error, or nil.
func (r *Reader) Err() error { return r.err }

// Len returns how many bytes remain unread.
func (r *Reader) Len() int { return len(r.buf) }

// Byte reads one byte.
func (r *Reader) Byte() byte {
	b := r.Take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Take reads exactly n bytes, aliasing the underlying buffer.
func (r *Reader) Take(n int) []byte {
	if r.err != nil || n < 0 || len(r.buf) < n {
		if r.err == nil {
			r.err = ErrShort
		}
		return nil
	}
	b := r.buf[:n]
	r.buf = r.buf[n:]
	return b
}

// Uvarint reads an unsigned LEB128 varint.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf)
	if n <= 0 {
		r.err = ErrShort
		return 0
	}
	r.buf = r.buf[n:]
	return v
}

// Int reads a varint and narrows it to int, latching ErrShort on values
// that do not fit (a malformed or hostile encoding, never a Corona
// counter).
func (r *Reader) Int() int {
	v := r.Uvarint()
	if v > math.MaxInt32 {
		if r.err == nil {
			r.err = ErrShort
		}
		return 0
	}
	return int(v)
}

// Sint reads a zigzag-encoded signed varint and narrows it to int,
// latching ErrShort on values outside the int32 range.
func (r *Reader) Sint() int {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf)
	if n <= 0 || v > math.MaxInt32 || v < math.MinInt32 {
		r.err = ErrShort
		return 0
	}
	r.buf = r.buf[n:]
	return int(v)
}

// ListLen reads a list's varint count prefix and validates it against
// the bytes remaining: each element of an encoded list costs at least
// minElemSize bytes, so a count claiming more than the buffer can hold
// is hostile geometry, never a list. Such counts (and counts beyond
// int32) latch ErrShort and return 0, so decoders can size allocations
// by the returned value safely.
func (r *Reader) ListLen(minElemSize int) int {
	n := r.Uvarint()
	if r.err != nil {
		return 0
	}
	if minElemSize < 1 {
		minElemSize = 1
	}
	if n > uint64(len(r.buf)/minElemSize+1) || n > math.MaxInt32 {
		r.err = ErrShort
		return 0
	}
	return int(n)
}

// Bytes reads a varint-length-prefixed byte string, aliasing the buffer.
func (r *Reader) Bytes() []byte {
	n := r.Uvarint()
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.buf)) {
		r.err = ErrShort
		return nil
	}
	return r.Take(int(n))
}

// String reads a varint-length-prefixed string (copying out of the buffer).
func (r *Reader) String() string {
	return string(r.Bytes())
}

// Float64 reads a fixed 8-byte little-endian IEEE 754 value.
func (r *Reader) Float64() float64 {
	b := r.Take(8)
	if b == nil {
		return 0
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b))
}

// Bool reads a one-byte boolean; any nonzero byte is true.
func (r *Reader) Bool() bool {
	return r.Byte() != 0
}

package wirebin

import (
	"bytes"
	"math"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	var b []byte
	b = AppendUvarint(b, 0)
	b = AppendUvarint(b, 1<<40)
	b = AppendSint(b, -17)
	b = AppendSint(b, 123456)
	b = AppendString(b, "hello")
	b = AppendBytes(b, []byte{1, 2, 3})
	b = AppendFloat64(b, -math.Pi)
	b = AppendBool(b, true)
	b = AppendBool(b, false)

	r := NewReader(b)
	if v := r.Uvarint(); v != 0 {
		t.Fatalf("uvarint = %d", v)
	}
	if v := r.Uvarint(); v != 1<<40 {
		t.Fatalf("uvarint = %d", v)
	}
	if v := r.Sint(); v != -17 {
		t.Fatalf("sint = %d", v)
	}
	if v := r.Sint(); v != 123456 {
		t.Fatalf("sint = %d", v)
	}
	if s := r.String(); s != "hello" {
		t.Fatalf("string = %q", s)
	}
	if bs := r.Bytes(); !bytes.Equal(bs, []byte{1, 2, 3}) {
		t.Fatalf("bytes = %v", bs)
	}
	if f := r.Float64(); f != -math.Pi {
		t.Fatalf("float = %v", f)
	}
	if !r.Bool() || r.Bool() {
		t.Fatal("bools scrambled")
	}
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	if r.Len() != 0 {
		t.Fatalf("%d trailing bytes", r.Len())
	}
}

func TestFloatBitExact(t *testing.T) {
	// The fixed bit-pattern encoding must survive values a decimal
	// rendering would mangle, including negative zero and NaN payloads.
	for _, f := range []float64{0, math.Copysign(0, -1), math.MaxFloat64, math.SmallestNonzeroFloat64, math.Inf(1), math.NaN()} {
		b := AppendFloat64(nil, f)
		got := NewReader(b).Float64()
		if math.Float64bits(got) != math.Float64bits(f) {
			t.Fatalf("bits changed: %x -> %x", math.Float64bits(f), math.Float64bits(got))
		}
	}
}

func TestErrorLatches(t *testing.T) {
	r := NewReader([]byte{5}) // claims 5 string bytes, has none
	_ = r.Bytes()
	if r.Err() == nil {
		t.Fatal("short read not detected")
	}
	// Every later read must return zero values without panicking.
	if r.Uvarint() != 0 || r.Sint() != 0 || r.Byte() != 0 || r.Float64() != 0 || r.Bool() || r.String() != "" {
		t.Fatal("reads after error should be zero")
	}
}

func TestListLen(t *testing.T) {
	// A plausible count passes and leaves the cursor on the elements.
	b := AppendUvarint(nil, 3)
	b = append(b, make([]byte, 30)...) // 3 elements of >= 10 bytes fit
	r := NewReader(b)
	if n := r.ListLen(10); n != 3 || r.Err() != nil {
		t.Fatalf("ListLen = %d, err %v", n, r.Err())
	}
	// A count claiming more than the buffer holds latches ErrShort.
	r = NewReader(AppendUvarint(nil, 1000))
	if n := r.ListLen(10); n != 0 || r.Err() == nil {
		t.Fatalf("hostile count accepted: n=%d err=%v", n, r.Err())
	}
	// Counts beyond int32 are hostile regardless of element size.
	r = NewReader(append(AppendUvarint(nil, 1<<40), make([]byte, 64)...))
	if n := r.ListLen(0); n != 0 || r.Err() == nil {
		t.Fatalf("giant count accepted: n=%d err=%v", n, r.Err())
	}
}

func TestTruncationAlwaysErrs(t *testing.T) {
	full := AppendString(AppendSint(AppendUvarint(nil, 300), -5), "abcdef")
	for cut := 0; cut < len(full); cut++ {
		r := NewReader(full[:cut])
		r.Uvarint()
		r.Sint()
		_ = r.String()
		if r.Err() == nil {
			t.Fatalf("cut at %d/%d decoded cleanly", cut, len(full))
		}
	}
}

// Package im implements Corona's instant-messaging front end (paper §3.5,
// §4): users add Corona as a buddy, send "subscribe url" requests, and
// receive update notifications asynchronously.
//
// The Service simulates the semantics the prototype depended on from
// commercial IM systems: store-and-forward buffering for offline users,
// pre-authenticated senders, a single active login per handle (the Yahoo
// constraint that forced the prototype's centralized gateway), and
// per-sender rate limits. The Gateway is that centralized intermediary:
// it implements the Corona node's Notifier interface, paces outgoing
// updates to respect the rate limit, and parses subscription commands.
package im

import (
	"fmt"
	"sync"
	"time"

	"corona/internal/clock"
)

// Message is one instant message.
type Message struct {
	// From and To are IM handles.
	From, To string
	// Body is the message text.
	Body string
	// At is the service-side send time.
	At time.Time
}

// DeliverFunc receives messages for an online user.
type DeliverFunc func(Message)

// account is the service-side record for one handle.
type account struct {
	online  bool
	deliver DeliverFunc
	inbox   []Message // buffered while offline
	// windowStart/windowCount implement the per-sender rate limit.
	windowStart time.Time
	windowCount int
}

// Service is the simulated instant-messaging system.
type Service struct {
	clk clock.Clock

	mu    sync.Mutex
	users map[string]*account

	// rateLimit is the maximum messages a sender may submit per minute;
	// zero disables limiting (the paper notes Yahoo rate-limits
	// unprivileged clients, §4).
	rateLimit int

	sent     uint64
	buffered uint64
	rejected uint64
}

// NewService creates an IM service on the given clock.
func NewService(clk clock.Clock) *Service {
	return &Service{clk: clk, users: make(map[string]*account)}
}

// SetRateLimit bounds per-sender messages per minute (0 = unlimited).
func (s *Service) SetRateLimit(perMinute int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rateLimit = perMinute
}

// Register creates a handle. Registering an existing handle is a no-op.
func (s *Service) Register(handle string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.users[handle]; !ok {
		s.users[handle] = &account{}
	}
}

// ErrAlreadyLoggedIn mirrors the single-login constraint of the era's IM
// systems ("Yahoo has a limitation that only one instance of a user can be
// logged on at a time", §4).
var ErrAlreadyLoggedIn = fmt.Errorf("im: handle already logged in")

// ErrUnknownUser is returned for unregistered handles.
var ErrUnknownUser = fmt.Errorf("im: unknown handle")

// ErrRateLimited is returned when a sender exceeds the per-minute budget.
var ErrRateLimited = fmt.Errorf("im: rate limited")

// Login brings a handle online; buffered messages are flushed to deliver
// in order. It fails if the handle is unknown or already logged in.
func (s *Service) Login(handle string, deliver DeliverFunc) error {
	s.mu.Lock()
	acct, ok := s.users[handle]
	if !ok {
		s.mu.Unlock()
		return ErrUnknownUser
	}
	if acct.online {
		s.mu.Unlock()
		return ErrAlreadyLoggedIn
	}
	acct.online = true
	acct.deliver = deliver
	pending := acct.inbox
	acct.inbox = nil
	s.mu.Unlock()
	// Flush outside the lock: delivery callbacks may call back into the
	// service.
	for _, m := range pending {
		deliver(m)
	}
	return nil
}

// Logout takes a handle offline; subsequent messages buffer.
func (s *Service) Logout(handle string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if acct, ok := s.users[handle]; ok {
		acct.online = false
		acct.deliver = nil
	}
}

// Send submits a message. Unknown recipients error; offline recipients
// buffer ("If a subscriber is off-line at the time an update is generated,
// the IM system buffers the update and delivers it when the subscriber
// subsequently joins", §3.5). Senders need not be registered (external
// systems like Corona authenticate out of band).
func (s *Service) Send(from, to, body string) error {
	now := s.clk.Now()
	s.mu.Lock()
	// Rate limit the sender.
	if s.rateLimit > 0 {
		sender, ok := s.users[from]
		if !ok {
			// Track unregistered senders too.
			sender = &account{}
			s.users[from] = sender
		}
		if now.Sub(sender.windowStart) >= time.Minute {
			sender.windowStart = now
			sender.windowCount = 0
		}
		if sender.windowCount >= s.rateLimit {
			s.rejected++
			s.mu.Unlock()
			return ErrRateLimited
		}
		sender.windowCount++
	}
	acct, ok := s.users[to]
	if !ok {
		s.mu.Unlock()
		return ErrUnknownUser
	}
	msg := Message{From: from, To: to, Body: body, At: now}
	if !acct.online {
		acct.inbox = append(acct.inbox, msg)
		s.buffered++
		s.mu.Unlock()
		return nil
	}
	deliver := acct.deliver
	s.sent++
	s.mu.Unlock()
	deliver(msg)
	return nil
}

// Counters returns (delivered, buffered, rejected) totals.
func (s *Service) Counters() (sent, buffered, rejected uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sent, s.buffered, s.rejected
}

package im

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"corona/internal/clock"
)

// Subscriber is the Corona-node surface the gateway drives: subscription
// requests parsed from instant messages are forwarded here.
type Subscriber interface {
	// Subscribe registers a client's interest in a channel URL.
	Subscribe(client, url string) error
	// Unsubscribe removes it.
	Unsubscribe(client, url string) error
}

// Notification is one structured update notification: what the node
// detected, addressed to one subscriber. The client protocol server
// delivers it as a typed frame; the legacy IM path renders it to text.
type Notification struct {
	// Client is the subscriber handle the notification is addressed to.
	Client string
	// Channel is the subscribed URL.
	Channel string
	// Version is the content version detected.
	Version uint64
	// Diff is the delta-encoded change (see internal/diffengine).
	Diff string
	// At is the update's detection timestamp when the notifying node
	// carried one, else the gateway-side emission time — either way the
	// best anchor the delivery layer has for end-to-end latency.
	At time.Time
	// Shared, when non-nil, is a per-batch cell a delivery layer may use
	// to encode the notification once and reuse the result for every
	// client in the batch (the encoded body excludes Client, so the bytes
	// are identical). Deliverers for the same batch run sequentially on
	// one goroutine, so the cell needs no locking — but for exactly that
	// reason a Deliverer must only touch the cell (and the Notification's
	// Shared pointer) synchronously, before it returns: a deliverer that
	// hands the cell to another goroutine races the next deliverer's
	// Store. TestNotifyBatchAttachDetachRace pins the contract.
	Shared *Shared
}

// Shared is the batch-scoped encode-once cell. With the binary client
// protocol and the web gateway attached to the same node, one batch can
// have more than one delivery layer encoding it (a wire frame and a JSON
// event), so the cell holds one slot per consumer, keyed by a pointer
// each consumer owns. Two slots cover every deployed shape; more append.
// The gateway only allocates the cell; deliverers for one batch run
// sequentially, so Load/Store need no locking.
type Shared struct {
	slots []sharedSlot
}

type sharedSlot struct {
	key, val any
}

// Load returns the value the batch's earlier deliverers stored under
// key, nil if none did.
func (s *Shared) Load(key any) any {
	for _, sl := range s.slots {
		if sl.key == key {
			return sl.val
		}
	}
	return nil
}

// Store saves val under key for the batch's later deliverers.
func (s *Shared) Store(key, val any) {
	for i := range s.slots {
		if s.slots[i].key == key {
			s.slots[i].val = val
			return
		}
	}
	s.slots = append(s.slots, sharedSlot{key: key, val: val})
}

// LegacyBody renders the notification as the prototype's IM message text
// ("UPDATE <url> v<version>" followed by the diff), the wire form the
// line protocol has always carried.
func (n Notification) LegacyBody() string {
	return fmt.Sprintf("UPDATE %s v%d\n%s", n.Channel, n.Version, n.Diff)
}

// Deliverer consumes structured notifications for one attached client.
type Deliverer func(Notification)

// Gateway is the intermediary between clients and Corona nodes — the
// prototype's centralized stop-gap for the single-login constraint (§4),
// generalized: it owns the "corona" buddy handle on the IM service and,
// for clients attached through the binary client protocol, delivers
// structured notifications directly.
//
// Delivery is two-tier. A client with an attached Deliverer (the client
// protocol server registers one per connection) receives the structured
// Notification immediately — typed frames need no IM-era pacing. Every
// other client gets the legacy path: the notification is rendered to IM
// text and sent through the pacing queue, which spaces outgoing messages
// so updates are not sent in bursts ("Corona's implementation limits the
// rate of updates sent to clients and avoids sending updates in bursts",
// §4).
type Gateway struct {
	service *Service
	clk     clock.Clock
	handle  string
	node    Subscriber

	mu       sync.Mutex
	attached map[string]*attachment
	queue    []queued
	draining bool
	// paceInterval is the gap enforced between outgoing legacy
	// notifications.
	paceInterval time.Duration

	notifyCounts  map[string]uint64 // url -> clients notified (counting mode)
	undeliverable uint64            // notifications with no deliverer and no IM account
	notifyBatches uint64            // NotifyBatch calls received
	batchClients  uint64            // clients covered by those batches

	// tap, when set, observes every channel update flowing through the
	// gateway — once per Notify/NotifyBatch call, before any deliverer
	// runs (same goroutine), so a consumer recording updates (the web
	// gateway's replay rings) is guaranteed to hold an update before any
	// per-client delivery of it can be observed or suppressed.
	tap Tap
}

// Tap observes one channel update passing through the gateway.
type Tap func(channel string, version uint64, diff string, at time.Time)

// attachment is one registered structured deliverer; the pointer's
// identity lets Detach remove only its own registration after a
// replacement.
type attachment struct {
	deliver Deliverer
}

// queued is one pending outgoing legacy notification.
type queued struct {
	to   string
	body string
}

// NewGateway registers the gateway's buddy handle on the service and
// connects it to a Corona node.
func NewGateway(service *Service, clk clock.Clock, handle string, node Subscriber) *Gateway {
	g := &Gateway{
		service:      service,
		clk:          clk,
		handle:       handle,
		node:         node,
		attached:     make(map[string]*attachment),
		paceInterval: 20 * time.Millisecond,
		notifyCounts: make(map[string]uint64),
	}
	service.Register(handle)
	service.Login(handle, g.handleInbound)
	return g
}

// SetPaceInterval adjusts the outgoing legacy-notification spacing.
func (g *Gateway) SetPaceInterval(d time.Duration) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if d > 0 {
		g.paceInterval = d
	}
}

// Handle returns the gateway's buddy handle.
func (g *Gateway) Handle() string { return g.handle }

// SetTap installs the gateway's update tap (nil clears it). The tap runs
// once per notification call, on the delivering goroutine, before the
// call's deliverers; it must not block.
func (g *Gateway) SetTap(tap Tap) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.tap = tap
}

// Attach registers a structured deliverer for client, replacing any
// previous one (a reconnecting client displaces its stale registration).
// Notifications for the client bypass the IM text path while attached.
// The returned detach func removes the registration — but only if it has
// not already been replaced by a newer Attach, so a slow-dying old
// connection cannot detach its successor.
func (g *Gateway) Attach(client string, deliver Deliverer) (detach func()) {
	a := &attachment{deliver: deliver}
	g.mu.Lock()
	g.attached[client] = a
	g.mu.Unlock()
	return func() {
		g.mu.Lock()
		if g.attached[client] == a {
			delete(g.attached, client)
		}
		g.mu.Unlock()
	}
}

// Attached reports whether client currently has a structured deliverer.
func (g *Gateway) Attached(client string) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	_, ok := g.attached[client]
	return ok
}

// handleInbound parses user commands: "subscribe <url>" and
// "unsubscribe <url>" (§3.5).
func (g *Gateway) handleInbound(m Message) {
	fields := strings.Fields(strings.TrimSpace(m.Body))
	if len(fields) != 2 {
		g.reply(m.From, "error: expected 'subscribe <url>' or 'unsubscribe <url>'")
		return
	}
	cmd, url := strings.ToLower(fields[0]), fields[1]
	var err error
	switch cmd {
	case "subscribe":
		err = g.node.Subscribe(m.From, url)
		if err == nil {
			g.reply(m.From, "subscribed "+url)
		}
	case "unsubscribe":
		err = g.node.Unsubscribe(m.From, url)
		if err == nil {
			g.reply(m.From, "unsubscribed "+url)
		}
	default:
		err = fmt.Errorf("unknown command %q", cmd)
	}
	if err != nil {
		g.reply(m.From, "error: "+err.Error())
	}
}

// reply sends a control response immediately (not paced — these are
// two-way conversation, which IM systems already optimize, §3.5).
func (g *Gateway) reply(to, body string) {
	g.service.Send(g.handle, to, body)
}

// Notify implements the Corona node's Notifier. An attached client gets
// the structured notification immediately; everyone else gets the legacy
// IM rendering through the pacing queue.
func (g *Gateway) Notify(client, channelURL string, version uint64, diff string, at time.Time) {
	if at.IsZero() {
		at = g.clk.Now()
	}
	n := Notification{
		Client:  client,
		Channel: channelURL,
		Version: version,
		Diff:    diff,
		At:      at,
	}
	g.mu.Lock()
	tap := g.tap
	g.mu.Unlock()
	if tap != nil {
		// Before the deliverer (and before the attachment check): a
		// notification for a detached client must still reach the tap's
		// replay rings, or the client could never fetch what it missed.
		tap(channelURL, version, diff, at)
	}
	g.mu.Lock()
	g.notifyCounts[channelURL]++
	if a, ok := g.attached[client]; ok {
		g.mu.Unlock()
		a.deliver(n)
		return
	}
	g.queue = append(g.queue, queued{to: client, body: n.LegacyBody()})
	start := !g.draining
	g.draining = true
	g.mu.Unlock()
	if start {
		g.drainOne()
	}
}

// NotifyBatch implements the Corona node's batch Notifier: every listed
// client receives the same update. Attached clients share one
// Notification value carrying one Shared cell, so the client-protocol
// server encodes the frame once and hands the same bytes to every
// connection; unattached clients fall back to the paced legacy IM queue,
// with the text body rendered once for the whole batch.
func (g *Gateway) NotifyBatch(clients []string, channelURL string, version uint64, diff string, at time.Time) {
	if len(clients) == 0 {
		return
	}
	if at.IsZero() {
		at = g.clk.Now()
	}
	n := Notification{
		Channel: channelURL,
		Version: version,
		Diff:    diff,
		At:      at,
		Shared:  &Shared{},
	}
	g.mu.Lock()
	tap := g.tap
	g.mu.Unlock()
	if tap != nil {
		// Once per batch, before any deliverer: see Notify.
		tap(channelURL, version, diff, at)
	}
	var delivers []Deliverer
	var handles []string
	legacyBody := ""
	start := false
	g.mu.Lock()
	g.notifyCounts[channelURL] += uint64(len(clients))
	g.notifyBatches++
	g.batchClients += uint64(len(clients))
	for _, c := range clients {
		if a, ok := g.attached[c]; ok {
			delivers = append(delivers, a.deliver)
			handles = append(handles, c)
			continue
		}
		if legacyBody == "" {
			legacyBody = n.LegacyBody()
		}
		g.queue = append(g.queue, queued{to: c, body: legacyBody})
		if !g.draining {
			g.draining = true
			start = true
		}
	}
	g.mu.Unlock()
	// Deliver outside the lock, sequentially: the first deliverer fills
	// the Shared cell, the rest reuse it.
	for i, deliver := range delivers {
		n.Client = handles[i]
		deliver(n)
	}
	if start {
		g.drainOne()
	}
}

// NotifyCount implements counting-mode notification accounting.
func (g *Gateway) NotifyCount(channelURL string, version uint64, count int, at time.Time) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.notifyCounts[channelURL] += uint64(count)
}

// drainOne sends the head of the queue and schedules the next send after
// the pacing interval.
func (g *Gateway) drainOne() {
	g.mu.Lock()
	if len(g.queue) == 0 {
		g.draining = false
		g.mu.Unlock()
		return
	}
	head := g.queue[0]
	g.queue = g.queue[1:]
	g.mu.Unlock()

	err := g.service.Send(g.handle, head.to, head.body)
	if err == ErrRateLimited {
		// Re-queue at the tail and back off a full window.
		g.mu.Lock()
		g.queue = append(g.queue, head)
		g.mu.Unlock()
		g.clk.AfterFunc(time.Minute, g.drainOne)
		return
	}
	if err == ErrUnknownUser {
		// No deliverer and no IM account: the client left this node (a
		// protocol client that failed over elsewhere); its replayed
		// subscription redirects future notifications.
		g.mu.Lock()
		g.undeliverable++
		g.mu.Unlock()
	}
	g.clk.AfterFunc(g.paceInterval, g.drainOne)
}

// Notified returns how many client notifications were issued for a URL.
func (g *Gateway) Notified(url string) uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.notifyCounts[url]
}

// Counters is one coherent snapshot of the gateway's delivery counters.
type Counters struct {
	Undeliverable uint64
	NotifyBatches uint64
	BatchClients  uint64
	QueueDepth    int
}

// CounterSnapshot reads every delivery counter under one lock
// acquisition, so callers assembling stats (the admin plane's /metrics,
// ServerInfo) never publish a torn view — Undeliverable from before a
// batch landed next to BatchClients from after it.
func (g *Gateway) CounterSnapshot() Counters {
	g.mu.Lock()
	defer g.mu.Unlock()
	return Counters{
		Undeliverable: g.undeliverable,
		NotifyBatches: g.notifyBatches,
		BatchClients:  g.batchClients,
		QueueDepth:    len(g.queue),
	}
}

// Undeliverable returns how many notifications found neither an attached
// deliverer nor an IM account for their client.
func (g *Gateway) Undeliverable() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.undeliverable
}

// NotifyBatches returns how many batched notification calls the gateway
// has received and how many client deliveries they covered.
func (g *Gateway) NotifyBatches() (batches, clients uint64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.notifyBatches, g.batchClients
}

// QueueDepth returns the number of legacy notifications awaiting pacing.
func (g *Gateway) QueueDepth() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.queue)
}

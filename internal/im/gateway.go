package im

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"corona/internal/clock"
)

// Subscriber is the Corona-node surface the gateway drives: subscription
// requests parsed from instant messages are forwarded here.
type Subscriber interface {
	// Subscribe registers a client's interest in a channel URL.
	Subscribe(client, url string) error
	// Unsubscribe removes it.
	Unsubscribe(client, url string) error
}

// Gateway is the intermediary between the IM service and Corona nodes —
// the prototype's centralized stop-gap for the single-login constraint
// (§4). It owns the "corona" buddy handle: inbound messages carry
// subscription commands; outbound notifications are paced so updates are
// not sent in bursts ("Corona's implementation limits the rate of updates
// sent to clients and avoids sending updates in bursts", §4).
type Gateway struct {
	service *Service
	clk     clock.Clock
	handle  string
	node    Subscriber

	mu       sync.Mutex
	queue    []queued
	draining bool
	// paceInterval is the gap enforced between outgoing notifications.
	paceInterval time.Duration

	notifyCounts map[string]uint64 // url -> clients notified (counting mode)
}

// queued is one pending outgoing notification.
type queued struct {
	to   string
	body string
}

// NewGateway registers the gateway's buddy handle on the service and
// connects it to a Corona node.
func NewGateway(service *Service, clk clock.Clock, handle string, node Subscriber) *Gateway {
	g := &Gateway{
		service:      service,
		clk:          clk,
		handle:       handle,
		node:         node,
		paceInterval: 20 * time.Millisecond,
		notifyCounts: make(map[string]uint64),
	}
	service.Register(handle)
	service.Login(handle, g.handleInbound)
	return g
}

// SetPaceInterval adjusts the outgoing notification spacing.
func (g *Gateway) SetPaceInterval(d time.Duration) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if d > 0 {
		g.paceInterval = d
	}
}

// Handle returns the gateway's buddy handle.
func (g *Gateway) Handle() string { return g.handle }

// handleInbound parses user commands: "subscribe <url>" and
// "unsubscribe <url>" (§3.5).
func (g *Gateway) handleInbound(m Message) {
	fields := strings.Fields(strings.TrimSpace(m.Body))
	if len(fields) != 2 {
		g.reply(m.From, "error: expected 'subscribe <url>' or 'unsubscribe <url>'")
		return
	}
	cmd, url := strings.ToLower(fields[0]), fields[1]
	var err error
	switch cmd {
	case "subscribe":
		err = g.node.Subscribe(m.From, url)
		if err == nil {
			g.reply(m.From, "subscribed "+url)
		}
	case "unsubscribe":
		err = g.node.Unsubscribe(m.From, url)
		if err == nil {
			g.reply(m.From, "unsubscribed "+url)
		}
	default:
		err = fmt.Errorf("unknown command %q", cmd)
	}
	if err != nil {
		g.reply(m.From, "error: "+err.Error())
	}
}

// reply sends a control response immediately (not paced — these are
// two-way conversation, which IM systems already optimize, §3.5).
func (g *Gateway) reply(to, body string) {
	g.service.Send(g.handle, to, body)
}

// Notify implements the Corona node's Notifier: the update diff travels to
// the subscriber as an instant message, through the pacing queue.
func (g *Gateway) Notify(client, channelURL string, version uint64, diff string) {
	body := fmt.Sprintf("UPDATE %s v%d\n%s", channelURL, version, diff)
	g.mu.Lock()
	g.queue = append(g.queue, queued{to: client, body: body})
	g.notifyCounts[channelURL]++
	start := !g.draining
	g.draining = true
	g.mu.Unlock()
	if start {
		g.drainOne()
	}
}

// NotifyCount implements counting-mode notification accounting.
func (g *Gateway) NotifyCount(channelURL string, version uint64, count int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.notifyCounts[channelURL] += uint64(count)
}

// drainOne sends the head of the queue and schedules the next send after
// the pacing interval.
func (g *Gateway) drainOne() {
	g.mu.Lock()
	if len(g.queue) == 0 {
		g.draining = false
		g.mu.Unlock()
		return
	}
	head := g.queue[0]
	g.queue = g.queue[1:]
	g.mu.Unlock()

	err := g.service.Send(g.handle, head.to, head.body)
	if err == ErrRateLimited {
		// Re-queue at the tail and back off a full window.
		g.mu.Lock()
		g.queue = append(g.queue, head)
		g.mu.Unlock()
		g.clk.AfterFunc(time.Minute, g.drainOne)
		return
	}
	g.clk.AfterFunc(g.paceInterval, g.drainOne)
}

// Notified returns how many client notifications were issued for a URL.
func (g *Gateway) Notified(url string) uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.notifyCounts[url]
}

// QueueDepth returns the number of notifications awaiting pacing.
func (g *Gateway) QueueDepth() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.queue)
}

package im

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"corona/internal/clock"
)

type nopNode struct{}

func (nopNode) Subscribe(client, url string) error   { return nil }
func (nopNode) Unsubscribe(client, url string) error { return nil }

// TestNotifyBatchAttachDetachRace pins the gateway seam's concurrency
// contract now that three delivery layers consume it (binary client
// protocol, web gateway, legacy IM): deliverers may attach and detach
// while NotifyBatch calls are in flight from several goroutines (an
// owner's local batch racing entry-node batch receipts), every deliverer
// touches its batch's Shared cell and the update tap observes each call
// — all of it must be race-clean, and a detach mid-batch must never
// corrupt a later recipient's view of the cell. Run under -race.
func TestNotifyBatchAttachDetachRace(t *testing.T) {
	service := NewService(clock.Real{})
	g := NewGateway(service, clock.Real{}, "corona", nopNode{})
	g.SetPaceInterval(time.Millisecond)

	var tapped atomic.Uint64
	g.SetTap(func(channel string, version uint64, diff string, at time.Time) {
		tapped.Add(1)
	})

	const clients = 24
	handles := make([]string, clients)
	for i := range handles {
		handles[i] = fmt.Sprintf("user%d", i)
	}
	// Two consumer keys stand in for the two encode-once delivery layers
	// sharing one batch cell.
	keyFrame, keyJSON := new(byte), new(byte)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var delivered atomic.Uint64

	// Flappers: every client's deliverer registration churns, half per
	// consumer key. The deliverer honors the cell contract: synchronous
	// Load/Store only, copying what it needs before returning.
	for i := range handles {
		key := keyFrame
		if i%2 == 1 {
			key = keyJSON
		}
		wg.Add(1)
		go func(h string, key any) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				detach := g.Attach(h, func(n Notification) {
					if n.Shared != nil {
						enc, _ := n.Shared.Load(key).([]byte)
						if enc == nil {
							enc = append([]byte(nil), n.Diff...)
							n.Shared.Store(key, enc)
						}
						if string(enc) != n.Diff {
							panic("shared cell returned another consumer's encoding")
						}
					}
					delivered.Add(1)
				})
				runtime.Gosched()
				detach()
			}
		}(handles[i], key)
	}

	// Notifiers: concurrent batches with distinct versions and diffs, so
	// a cross-batch cell mixup is observable as a diff mismatch above.
	var version atomic.Uint64
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				v := version.Add(1)
				g.NotifyBatch(handles, "http://feeds.example.com/a.xml", v, fmt.Sprintf("diff-%d", v), time.Time{})
			}
		}()
	}

	time.Sleep(200 * time.Millisecond)
	close(stop)
	wg.Wait()

	if tapped.Load() == 0 {
		t.Fatal("tap never observed an update")
	}
	if delivered.Load() == 0 {
		t.Fatal("no deliverer ran while flapping")
	}
}

// TestSharedCellPerConsumerSlots pins the multi-consumer cell shape: one
// batch delivered to clients attached through two different delivery
// layers encodes exactly once per layer, and neither layer ever reads
// the other's slot — the regression the keyed slots fix (a single Enc
// field thrashed between consumer types, degrading the encode-once edge
// to per-client encodes whenever transports interleave).
func TestSharedCellPerConsumerSlots(t *testing.T) {
	service := NewService(clock.Real{})
	g := NewGateway(service, clock.Real{}, "corona", nopNode{})

	keyA, keyB := new(byte), new(byte)
	var encodesA, encodesB int
	attach := func(h string, key *byte, encodes *int, want string) {
		g.Attach(h, func(n Notification) {
			enc, _ := n.Shared.Load(key).(string)
			if enc == "" {
				*encodes++
				enc = want
				n.Shared.Store(key, enc)
			}
			if enc != want {
				t.Errorf("client %s read %q from its consumer slot, want %q", h, enc, want)
			}
		})
	}
	// Interleave the two consumers across the batch order.
	handles := []string{"a0", "b0", "a1", "b1", "a2", "b2"}
	for _, h := range handles {
		if h[0] == 'a' {
			attach(h, keyA, &encodesA, "enc-A")
		} else {
			attach(h, keyB, &encodesB, "enc-B")
		}
	}
	g.NotifyBatch(handles, "http://feeds.example.com/a.xml", 7, "d", time.Time{})
	if encodesA != 1 || encodesB != 1 {
		t.Fatalf("encodes per consumer = %d/%d, want 1/1", encodesA, encodesB)
	}
}

package im

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"corona/internal/eventsim"
)

func TestRegisterLoginDeliver(t *testing.T) {
	sim := eventsim.New(1)
	s := NewService(sim)
	s.Register("alice")
	var got []Message
	if err := s.Login("alice", func(m Message) { got = append(got, m) }); err != nil {
		t.Fatal(err)
	}
	if err := s.Send("corona", "alice", "hello"); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Body != "hello" || got[0].From != "corona" {
		t.Fatalf("delivered = %+v", got)
	}
}

func TestOfflineBuffering(t *testing.T) {
	sim := eventsim.New(1)
	s := NewService(sim)
	s.Register("bob")
	for i := 0; i < 3; i++ {
		if err := s.Send("corona", "bob", fmt.Sprintf("m%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	_, buffered, _ := s.Counters()
	if buffered != 3 {
		t.Fatalf("buffered = %d, want 3", buffered)
	}
	var got []string
	if err := s.Login("bob", func(m Message) { got = append(got, m.Body) }); err != nil {
		t.Fatal(err)
	}
	if strings.Join(got, ",") != "m0,m1,m2" {
		t.Fatalf("flush order wrong: %v", got)
	}
}

func TestSingleLogin(t *testing.T) {
	sim := eventsim.New(1)
	s := NewService(sim)
	s.Register("carol")
	if err := s.Login("carol", func(Message) {}); err != nil {
		t.Fatal(err)
	}
	if err := s.Login("carol", func(Message) {}); err != ErrAlreadyLoggedIn {
		t.Fatalf("second login err = %v, want ErrAlreadyLoggedIn", err)
	}
	s.Logout("carol")
	if err := s.Login("carol", func(Message) {}); err != nil {
		t.Fatalf("re-login after logout: %v", err)
	}
}

func TestUnknownRecipient(t *testing.T) {
	sim := eventsim.New(1)
	s := NewService(sim)
	if err := s.Send("corona", "nobody", "x"); err != ErrUnknownUser {
		t.Fatalf("err = %v, want ErrUnknownUser", err)
	}
	if err := s.Login("nobody", func(Message) {}); err != ErrUnknownUser {
		t.Fatalf("login err = %v, want ErrUnknownUser", err)
	}
}

func TestSenderRateLimit(t *testing.T) {
	sim := eventsim.New(1)
	s := NewService(sim)
	s.SetRateLimit(2)
	s.Register("dave")
	s.Login("dave", func(Message) {})
	if err := s.Send("corona", "dave", "1"); err != nil {
		t.Fatal(err)
	}
	if err := s.Send("corona", "dave", "2"); err != nil {
		t.Fatal(err)
	}
	if err := s.Send("corona", "dave", "3"); err != ErrRateLimited {
		t.Fatalf("third send err = %v, want ErrRateLimited", err)
	}
	// After a minute the window resets.
	sim.AfterFunc(61*time.Second, func() {
		if err := s.Send("corona", "dave", "4"); err != nil {
			t.Fatalf("send after window reset: %v", err)
		}
	})
	sim.RunFor(2 * time.Minute)
}

// fakeNode records subscription calls.
type fakeNode struct {
	subs, unsubs []string
	fail         bool
}

func (f *fakeNode) Subscribe(client, url string) error {
	if f.fail {
		return fmt.Errorf("overlay down")
	}
	f.subs = append(f.subs, client+" "+url)
	return nil
}

func (f *fakeNode) Unsubscribe(client, url string) error {
	f.unsubs = append(f.unsubs, client+" "+url)
	return nil
}

func TestGatewayParsesCommands(t *testing.T) {
	sim := eventsim.New(1)
	s := NewService(sim)
	node := &fakeNode{}
	g := NewGateway(s, sim, "corona", node)

	s.Register("alice")
	var replies []string
	s.Login("alice", func(m Message) { replies = append(replies, m.Body) })

	s.Send("alice", g.Handle(), "subscribe http://example.com/f.xml")
	s.Send("alice", g.Handle(), "unsubscribe http://example.com/f.xml")
	s.Send("alice", g.Handle(), "gibberish")
	s.Send("alice", g.Handle(), "too many words here")
	sim.RunFor(time.Second)

	if len(node.subs) != 1 || node.subs[0] != "alice http://example.com/f.xml" {
		t.Fatalf("subs = %v", node.subs)
	}
	if len(node.unsubs) != 1 {
		t.Fatalf("unsubs = %v", node.unsubs)
	}
	if len(replies) != 4 {
		t.Fatalf("replies = %v", replies)
	}
	if !strings.Contains(replies[0], "subscribed") || !strings.Contains(replies[2], "error") {
		t.Fatalf("reply contents wrong: %v", replies)
	}
}

func TestGatewayReportsNodeErrors(t *testing.T) {
	sim := eventsim.New(1)
	s := NewService(sim)
	node := &fakeNode{fail: true}
	g := NewGateway(s, sim, "corona", node)
	s.Register("bob")
	var replies []string
	s.Login("bob", func(m Message) { replies = append(replies, m.Body) })
	s.Send("bob", g.Handle(), "subscribe http://x/f.xml")
	sim.RunFor(time.Second)
	if len(replies) != 1 || !strings.Contains(replies[0], "error") {
		t.Fatalf("replies = %v", replies)
	}
}

func TestGatewayPacesNotifications(t *testing.T) {
	sim := eventsim.New(1)
	s := NewService(sim)
	g := NewGateway(s, sim, "corona", &fakeNode{})
	g.SetPaceInterval(100 * time.Millisecond)

	var arrivals []time.Time
	for i := 0; i < 5; i++ {
		u := fmt.Sprintf("user%d", i)
		s.Register(u)
		s.Login(u, func(m Message) { arrivals = append(arrivals, sim.Now()) })
	}
	for i := 0; i < 5; i++ {
		g.Notify(fmt.Sprintf("user%d", i), "http://x/f.xml", 2, "diff", time.Time{})
	}
	sim.RunFor(5 * time.Second)
	if len(arrivals) != 5 {
		t.Fatalf("arrivals = %d, want 5", len(arrivals))
	}
	for i := 1; i < len(arrivals); i++ {
		if gap := arrivals[i].Sub(arrivals[i-1]); gap < 100*time.Millisecond {
			t.Fatalf("notifications not paced: gap %v", gap)
		}
	}
	if g.Notified("http://x/f.xml") != 5 {
		t.Fatalf("Notified = %d", g.Notified("http://x/f.xml"))
	}
}

func TestGatewayRecoversFromRateLimit(t *testing.T) {
	sim := eventsim.New(1)
	s := NewService(sim)
	s.SetRateLimit(2)
	g := NewGateway(s, sim, "corona", &fakeNode{})
	g.SetPaceInterval(time.Millisecond)

	delivered := 0
	for i := 0; i < 4; i++ {
		u := fmt.Sprintf("u%d", i)
		s.Register(u)
		s.Login(u, func(m Message) { delivered++ })
	}
	for i := 0; i < 4; i++ {
		g.Notify(fmt.Sprintf("u%d", i), "http://x/f.xml", 1, "d", time.Time{})
	}
	// Two go out immediately; the rest must drain after window resets.
	sim.RunFor(5 * time.Minute)
	if delivered != 4 {
		t.Fatalf("delivered = %d after rate-limit recovery, want 4", delivered)
	}
	if g.QueueDepth() != 0 {
		t.Fatalf("queue depth = %d, want 0", g.QueueDepth())
	}
}

func TestNotifyCountAccumulates(t *testing.T) {
	sim := eventsim.New(1)
	s := NewService(sim)
	g := NewGateway(s, sim, "corona", &fakeNode{})
	g.NotifyCount("http://x/f.xml", 3, 250, time.Time{})
	g.NotifyCount("http://x/f.xml", 4, 250, time.Time{})
	if got := g.Notified("http://x/f.xml"); got != 500 {
		t.Fatalf("Notified = %d, want 500", got)
	}
}

func TestGatewayAttachedDeliveryBypassesPacing(t *testing.T) {
	sim := eventsim.New(1)
	s := NewService(sim)
	g := NewGateway(s, sim, "corona", &fakeNode{})
	g.SetPaceInterval(time.Hour) // pacing would stall a legacy queue

	var got []Notification
	detach := g.Attach("alice", func(n Notification) { got = append(got, n) })
	for i := uint64(1); i <= 3; i++ {
		g.Notify("alice", "http://x/f.xml", i, "d", time.Time{})
	}
	// No simulated time passes: structured delivery is immediate.
	if len(got) != 3 || got[0].Version != 1 || got[2].Version != 3 {
		t.Fatalf("structured notifications = %+v", got)
	}
	if got[0].Channel != "http://x/f.xml" || got[0].Client != "alice" || got[0].Diff != "d" {
		t.Fatalf("notification fields = %+v", got[0])
	}
	if g.QueueDepth() != 0 {
		t.Fatalf("legacy queue depth = %d, want 0", g.QueueDepth())
	}
	if g.Notified("http://x/f.xml") != 3 {
		t.Fatalf("Notified = %d", g.Notified("http://x/f.xml"))
	}

	// After detach, notifications fall back to the legacy IM path.
	detach()
	s.Register("alice")
	var legacy []string
	s.Login("alice", func(m Message) { legacy = append(legacy, m.Body) })
	g.SetPaceInterval(time.Millisecond)
	g.Notify("alice", "http://x/f.xml", 4, "d4", time.Time{})
	sim.RunFor(time.Second)
	if len(legacy) != 1 || !strings.HasPrefix(legacy[0], "UPDATE http://x/f.xml v4") {
		t.Fatalf("legacy fallback = %v", legacy)
	}
}

func TestGatewayAttachReplacesAndGuardsDetach(t *testing.T) {
	sim := eventsim.New(1)
	s := NewService(sim)
	g := NewGateway(s, sim, "corona", &fakeNode{})

	var first, second int
	detach1 := g.Attach("alice", func(Notification) { first++ })
	g.Attach("alice", func(Notification) { second++ })
	// The stale registration's detach must not remove its successor.
	detach1()
	if !g.Attached("alice") {
		t.Fatal("stale detach removed the replacement deliverer")
	}
	g.Notify("alice", "u", 1, "", time.Time{})
	if first != 0 || second != 1 {
		t.Fatalf("delivery counts = (%d, %d), want (0, 1)", first, second)
	}
}

func TestGatewayCountsUndeliverable(t *testing.T) {
	sim := eventsim.New(1)
	s := NewService(sim)
	g := NewGateway(s, sim, "corona", &fakeNode{})
	g.SetPaceInterval(time.Millisecond)
	// No deliverer, no IM account: the notification has nowhere to go.
	g.Notify("ghost", "http://x/f.xml", 1, "d", time.Time{})
	sim.RunFor(time.Second)
	if g.Undeliverable() != 1 {
		t.Fatalf("Undeliverable = %d, want 1", g.Undeliverable())
	}
}

func TestNotificationLegacyBody(t *testing.T) {
	n := Notification{Channel: "http://x/f.xml", Version: 12, Diff: "a\nb"}
	if got := n.LegacyBody(); got != "UPDATE http://x/f.xml v12\na\nb" {
		t.Fatalf("LegacyBody = %q", got)
	}
}

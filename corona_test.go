package corona

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSimulationEndToEnd(t *testing.T) {
	sim, err := NewSimulation(Options{
		Nodes:        16,
		PollInterval: 5 * time.Minute,
		Seed:         3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Close()

	const url = "http://news.example.com/feed.xml"
	if err := sim.HostFeed(url, 20*time.Minute); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var got []Notification
	err = sim.Subscribe("alice", url, func(n Notification) {
		mu.Lock()
		got = append(got, n)
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	sim.RunFor(3 * time.Hour)

	mu.Lock()
	defer mu.Unlock()
	if len(got) < 5 {
		t.Fatalf("alice received %d notifications over 3h of 20m updates, want ≥5", len(got))
	}
	for _, n := range got {
		if n.Channel != url || n.Client != "alice" {
			t.Fatalf("misaddressed notification: %+v", n)
		}
		if n.Diff == "" || !strings.Contains(n.Diff, "CORONA-DIFF") {
			t.Fatalf("notification carries no encoded diff: %+v", n)
		}
	}
	// Versions strictly increase.
	for i := 1; i < len(got); i++ {
		if got[i].Version <= got[i-1].Version {
			t.Fatalf("versions not increasing: %d then %d", got[i-1].Version, got[i].Version)
		}
	}
	st := sim.Stats()
	if st.Polls == 0 || st.UpdatesDetected == 0 || st.Notifications == 0 {
		t.Fatalf("stats empty: %+v", st)
	}
}

func TestSimulationUnsubscribeStopsNotifications(t *testing.T) {
	sim, err := NewSimulation(Options{Nodes: 8, PollInterval: 5 * time.Minute, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Close()
	const url = "http://news.example.com/u.xml"
	sim.HostFeed(url, 15*time.Minute)
	count := 0
	sim.Subscribe("bob", url, func(Notification) { count++ })
	sim.RunFor(time.Hour)
	sim.Unsubscribe("bob", url)
	sim.RunFor(time.Minute) // let the unsubscribe propagate
	before := count
	sim.RunFor(2 * time.Hour)
	if count != before {
		t.Fatalf("notifications continued after unsubscribe: %d -> %d", before, count)
	}
}

func TestSimulationChannelStatus(t *testing.T) {
	sim, err := NewSimulation(Options{Nodes: 16, PollInterval: 5 * time.Minute, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Close()
	const url = "http://news.example.com/s.xml"
	sim.HostFeed(url, time.Hour)
	sim.Subscribe("carol", url, func(Notification) {})
	sim.RunFor(30 * time.Minute)
	st := sim.ChannelStatus(url)
	if st.Subscribers != 1 {
		t.Fatalf("subscribers = %d, want 1", st.Subscribers)
	}
	if st.Pollers < 1 {
		t.Fatalf("pollers = %d, want ≥1", st.Pollers)
	}
}

func TestHostFeedValidation(t *testing.T) {
	sim, err := NewSimulation(Options{Nodes: 4, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Close()
	if err := sim.HostFeed("http://x/f.xml", 0); err == nil {
		t.Fatal("zero update interval accepted")
	}
	if err := sim.HostFeed("http://x/f.xml", time.Hour); err != nil {
		t.Fatal(err)
	}
	if err := sim.HostFeed("http://x/f.xml", time.Hour); err == nil {
		t.Fatal("duplicate feed accepted")
	}
}

func TestSubscribeValidation(t *testing.T) {
	sim, err := NewSimulation(Options{Nodes: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Close()
	if err := sim.Subscribe("x", "http://x/f.xml", nil); err == nil {
		t.Fatal("nil callback accepted")
	}
}

func TestOptionsValidation(t *testing.T) {
	if _, err := NewSimulation(Options{Nodes: -1}); err == nil {
		t.Fatal("negative Nodes accepted")
	}
	if _, err := NewSimulation(Options{PollInterval: -time.Second}); err == nil {
		t.Fatal("negative PollInterval accepted")
	}
}

func TestSchemeStrings(t *testing.T) {
	cases := map[Scheme]string{
		Lite:     "Corona-Lite",
		Fast:     "Corona-Fast",
		Fair:     "Corona-Fair",
		FairSqrt: "Corona-Fair-Sqrt",
		FairLog:  "Corona-Fair-Log",
	}
	for s, want := range cases {
		if got := s.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(s), got, want)
		}
	}
}

func TestClusterRealTime(t *testing.T) {
	// A real-time smoke test: second-scale polling, one update, one
	// notification. Kept short so the suite stays fast.
	cl, err := NewCluster(Options{
		Nodes:               8,
		PollInterval:        200 * time.Millisecond,
		MaintenanceInterval: time.Second,
		Seed:                8,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	const url = "http://demo.example.com/feed.xml"
	if err := cl.HostFeed(url, 300*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	ch := make(chan Notification, 64)
	err = cl.Subscribe("dave", url, func(n Notification) {
		select {
		case ch <- n:
		default:
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case n := <-ch:
		if n.Channel != url {
			t.Fatalf("wrong channel: %+v", n)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("no notification within 15s of real time")
	}
}

# Developer entry points; CI runs `make check` and `make bench-smoke`.

# bench pipes `go test` into bench2json; bash + pipefail keeps a failing
# benchmark run from silently writing an empty BENCH_wire.json.
SHELL := /bin/bash
.SHELLFLAGS := -o pipefail -ec

GO ?= go

.PHONY: check vet build test race lint bench bench-all bench-smoke chaos chaos-long

check: vet build test lint

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The whole tree under the race detector — not just the historical hot
# spots: every package is cheap enough, and the edges between them are
# where the lockblock-class bugs lived.
race:
	$(GO) test -race ./...

# Static analysis: gofmt gating, the house analyzers (corona-lint:
# maporder, lockblock, wiresym, wallclock), and — when their pinned
# binaries are installed (CI installs them; they need network to fetch)
# — staticcheck and govulncheck.
lint:
	@unformatted="$$(gofmt -l .)"; if [ -n "$$unformatted" ]; then \
		echo "gofmt: needs formatting:"; echo "$$unformatted"; exit 1; fi
	$(GO) run ./cmd/corona-lint ./...
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck -checks 'SA*' ./...; \
		else echo "staticcheck not installed; skipped (CI runs it pinned)"; fi
	@if command -v govulncheck >/dev/null 2>&1; then govulncheck ./...; \
		else echo "govulncheck not installed; skipped (CI runs it pinned)"; fi

# Wire-layer benchmarks (payload encode, fan-out, round trip, end-to-end
# dissemination) recorded in BENCH_wire.json; durable-store benchmarks
# (append throughput, WAL/snapshot replay vs channel count, full restart
# Open) recorded in BENCH_store.json; client-edge benchmarks
# (notification fan-out through the gateway into clientproto frame
# encode) recorded in BENCH_client.json; hot-channel fan-out benchmarks
# (owner messages per update with and without delegate sharding, plus the
# encode-once NotifyBatch edge against the per-client-encode baseline)
# recorded in BENCH_fanout.json; observability benchmarks (counter inc,
# labeled lookup, histogram observe, a full /metrics render at 1k
# series) recorded in BENCH_obs.json; web-edge benchmarks (replay ring
# append/replay, WS frame encode/parse, tap-to-queue delivery with the
# encode-once shared slot) recorded in BENCH_web.json.
bench:
	$(GO) test -run xxx -bench 'Wire|UpdateEncode|UpdateDecodeForward|FanOutEncode|UpdateDissemination' -benchmem . ./internal/core/ \
		| $(GO) run ./cmd/bench2json -o BENCH_wire.json
	$(GO) test -run xxx -bench 'Store' -benchmem ./internal/store/ \
		| $(GO) run ./cmd/bench2json -o BENCH_store.json
	$(GO) test -run xxx -bench 'Client' -benchmem ./internal/clientproto/ \
		| $(GO) run ./cmd/bench2json -o BENCH_client.json
	$(GO) test -run xxx -bench 'Fanout' -benchmem ./internal/core/ ./internal/clientproto/ \
		| $(GO) run ./cmd/bench2json -o BENCH_fanout.json
	$(GO) test -run xxx -bench 'Obs' -benchmem ./internal/metrics/ \
		| $(GO) run ./cmd/bench2json -o BENCH_obs.json
	$(GO) test -run xxx -bench 'Web' -benchmem ./internal/webgateway/ \
		| $(GO) run ./cmd/bench2json -o BENCH_web.json
	$(MAKE) chaos

# The torture suite: every chaos scenario at CI scale, with the invariant
# sweep (single owner, no black holes, monotonic versions, exactly-once
# after convergence, consistent delegate rosters). Convergence time,
# messages-to-converge, violation count (must be 0), and peak owner load
# are recorded in BENCH_scale.json.
chaos:
	$(GO) run ./cmd/corona-chaos -o BENCH_scale.json

# The same suite at deployment scale: 4096 nodes, 10^5 subscriptions.
# Takes tens of minutes; not part of bench or CI.
chaos-long:
	$(GO) run ./cmd/corona-chaos -scale long -o BENCH_scale_long.json

# Every benchmark, including the figure regenerations.
bench-all:
	$(GO) test -run xxx -bench . -benchmem .

# One iteration of every benchmark — a CI smoke test that the bench
# harness still builds and runs end to end.
bench-smoke:
	$(GO) test -run xxx -bench . -benchtime 1x ./...

# Developer entry points; CI runs `make check`.

GO ?= go

.PHONY: check vet build test race bench

check: vet build test

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The wire layer is the concurrency hot spot; run it under the race
# detector explicitly.
race:
	$(GO) test -race ./internal/netwire/ ./internal/codec/ ./internal/pastry/

bench:
	$(GO) test -run xxx -bench . -benchmem .

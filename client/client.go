// Package client is the Go SDK for subscribing to a live Corona cloud.
//
// A Conn speaks the versioned binary client protocol
// (internal/clientproto) to one node of the cloud at a time, chosen from
// the address list given to Dial. Subscribe and Unsubscribe block until
// the serving node acknowledges the request; update notifications stream
// through the Notifications channel.
//
// The connection survives node failure: when the serving node dies, the
// Conn dials the next address in the list, resumes its session with the
// token minted at first login, and asserts its subscription set with one
// lease-refresh frame — which re-points each channel owner's entry-node
// record at the new node, no Subscribe replay — so the application keeps
// receiving notifications without re-calling Subscribe. The same frame
// repeats on every ping tick as an entry-node lease heartbeat, letting
// owners detect and route around dead entry nodes server-side. Failover
// is invisible apart from the gap it takes to reconnect. (Version-1
// servers get the old per-URL Subscribe replay instead.)
//
//	conn, err := client.Dial(ctx, []string{"10.0.0.1:9201", "10.0.0.2:9201"},
//		client.Options{Handle: "alice"})
//	if err != nil { ... }
//	defer conn.Close()
//	if err := conn.Subscribe(ctx, feedURL); err != nil { ... }
//	for n := range conn.Notifications() {
//		fmt.Println(n.Channel, n.Version)
//	}
package client

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"corona"
	"corona/internal/clientproto"
)

// Defaults for the Options below.
const (
	defaultDialTimeout  = 3 * time.Second
	defaultRetryWait    = 500 * time.Millisecond
	defaultPingInterval = 30 * time.Second
	defaultNotifyBuffer = 64
)

// Options configures a Conn.
type Options struct {
	// Handle is the subscriber identity (required). Subscriptions are
	// keyed by handle in the cloud, so a client reconnecting anywhere
	// with the same handle is the same subscriber.
	Handle string
	// DialTimeout bounds each connection attempt (default 3s).
	DialTimeout time.Duration
	// RetryWait is the pause between full sweeps of the address list
	// while reconnecting (default 500ms).
	RetryWait time.Duration
	// PingInterval is the liveness-probe period; each ping is acked and
	// refreshes ServerInfo. Zero means the 30s default; negative
	// disables pinging (and with it the read-idle timeout).
	PingInterval time.Duration
	// NotifyBuffer is the Notifications channel capacity (default 64).
	// When the application falls behind, the oldest buffered
	// notification is dropped — counted in NotificationsDropped — so the
	// stream stays current.
	NotifyBuffer int
}

func (o Options) withDefaults() Options {
	if o.DialTimeout <= 0 {
		o.DialTimeout = defaultDialTimeout
	}
	if o.RetryWait <= 0 {
		o.RetryWait = defaultRetryWait
	}
	if o.PingInterval == 0 {
		o.PingInterval = defaultPingInterval
	}
	if o.NotifyBuffer <= 0 {
		o.NotifyBuffer = defaultNotifyBuffer
	}
	return o
}

// ServerInfo is the serving node's most recent advertisement: its overlay
// endpoint, its leaf-set siblings, and its durable store's health.
type ServerInfo struct {
	// Node is the serving node's advertised overlay endpoint.
	Node string
	// Peers are overlay endpoints of the node's ring neighbors
	// (operator-visible topology, not dialable client ports).
	Peers []string
	// StoreEnabled reports whether the node persists channel state.
	StoreEnabled bool
	// StoreGeneration, StoreWALBytes and StoreRecordsSinceSnapshot
	// describe the durable store's write-ahead log.
	StoreGeneration           uint64
	StoreWALBytes             int64
	StoreRecordsSinceSnapshot int
	// StoreErr is the store's latched IO error, empty while healthy.
	StoreErr string
	// HasFanout reports whether the node advertised fan-out accounting
	// (protocol version 3 servers do; older servers leave Fanout zero).
	HasFanout bool
	// Fanout is the node's update fan-out accounting: batched
	// notification sends, delegate-sharding activity, and client-edge
	// delivery losses.
	Fanout clientproto.FanoutInfo
}

// ErrClosed is returned by operations on a Conn after Close.
var ErrClosed = errors.New("client: connection closed")

// errNotConnected is the internal between-nodes state; callers of
// Subscribe wait out reconnection instead of seeing it.
var errNotConnected = errors.New("client: not connected")

// result is one request's resolution: nak reason, or a transport error.
type result struct {
	nak string
	err error
}

// Conn is one logical client connection to the cloud. All methods are
// safe for concurrent use.
type Conn struct {
	addrs []string
	opts  Options

	notifyCh chan corona.Notification
	dropped  atomic.Uint64
	reqID    atomic.Uint64

	runDone chan struct{}
	closeCh chan struct{}
	// dialCtx spans the Conn's lifetime; Close cancels it so a reconnect
	// sweep mid-dial aborts instead of running out its timeouts.
	dialCtx    context.Context
	dialCancel context.CancelFunc

	mu        sync.Mutex
	cur       net.Conn
	curAddr   string
	connReady chan struct{} // closed while connected; fresh while not
	token     []byte
	version   byte // negotiated protocol version of the current connection
	subs      map[string]struct{}
	pending   map[uint64]chan result
	lastInfo  ServerInfo
	haveInfo  bool
	closed    bool

	// wmu serializes frame writes to the current connection.
	wmu sync.Mutex
}

// Dial connects to the first reachable node in addrs, logs in, and
// returns a live Conn. The context bounds the initial connection only;
// after that the Conn reconnects on its own until Close. Each address is
// a node's client-protocol port (corona-node -client).
func Dial(ctx context.Context, addrs []string, opts Options) (*Conn, error) {
	if len(addrs) == 0 {
		return nil, errors.New("client: at least one node address required")
	}
	if opts.Handle == "" {
		return nil, errors.New("client: Options.Handle required")
	}
	opts = opts.withDefaults()
	c := &Conn{
		addrs:     append([]string(nil), addrs...),
		opts:      opts,
		notifyCh:  make(chan corona.Notification, opts.NotifyBuffer),
		runDone:   make(chan struct{}),
		closeCh:   make(chan struct{}),
		connReady: make(chan struct{}),
		subs:      make(map[string]struct{}),
		pending:   make(map[uint64]chan result),
	}
	c.dialCtx, c.dialCancel = context.WithCancel(context.Background())
	var lastErr error
	idx := -1
	for i, a := range addrs {
		conn, err := c.connect(ctx, a)
		if err == nil {
			idx = i
			go c.run(conn, idx)
			return c, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
	}
	return nil, fmt.Errorf("client: no node reachable among %v: %w", addrs, lastErr)
}

// Notifications returns the update stream. The channel closes when the
// Conn is closed.
func (c *Conn) Notifications() <-chan corona.Notification { return c.notifyCh }

// NotificationsDropped returns how many notifications were discarded
// because the application did not drain Notifications fast enough.
func (c *Conn) NotificationsDropped() uint64 { return c.dropped.Load() }

// Handle returns the subscriber identity.
func (c *Conn) Handle() string { return c.opts.Handle }

// Addr returns the address of the currently serving node, empty while
// reconnecting.
func (c *Conn) Addr() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.curAddr
}

// ServerInfo returns the serving node's latest advertisement and whether
// one has been received.
func (c *Conn) ServerInfo() (ServerInfo, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lastInfo, c.haveInfo
}

// Subscriptions returns the Conn's desired subscription set — what is
// replayed to a node after failover.
func (c *Conn) Subscriptions() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.subs))
	for u := range c.subs {
		out = append(out, u)
	}
	return out
}

// Subscribe registers interest in a channel URL and blocks until the
// serving node acks it (or ctx ends). The URL joins the Conn's desired
// set immediately, so a failover during the call still replays it; the
// call itself retries across reconnects until it observes an ack.
func (c *Conn) Subscribe(ctx context.Context, url string) error {
	return c.subscribe(ctx, url, false)
}

// Unsubscribe removes a subscription, blocking until acked.
func (c *Conn) Unsubscribe(ctx context.Context, url string) error {
	return c.subscribe(ctx, url, true)
}

func (c *Conn) subscribe(ctx context.Context, url string, remove bool) error {
	if url == "" {
		return errors.New("client: empty channel URL")
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	if remove {
		delete(c.subs, url)
	} else {
		c.subs[url] = struct{}{}
	}
	c.mu.Unlock()
	for {
		if err := c.awaitConnected(ctx); err != nil {
			return err
		}
		id, ch := c.register()
		var f clientproto.Frame
		if remove {
			f = &clientproto.Unsubscribe{ReqID: id, URL: url}
		} else {
			f = &clientproto.Subscribe{ReqID: id, URL: url}
		}
		if err := c.send(f); err != nil {
			c.unregister(id)
			if errors.Is(err, ErrClosed) {
				return err
			}
			continue // connection died; wait out the reconnect and retry
		}
		select {
		case r := <-ch:
			switch {
			case r.err == nil && r.nak == "":
				return nil
			case r.nak != "":
				if !remove {
					c.mu.Lock()
					delete(c.subs, url) // refused: do not replay it forever
					c.mu.Unlock()
				}
				return fmt.Errorf("client: %s refused: %s", url, r.nak)
			case errors.Is(r.err, ErrClosed):
				return r.err
			default:
				continue // disconnected mid-request; retry on the next node
			}
		case <-ctx.Done():
			c.unregister(id)
			return ctx.Err()
		case <-c.closeCh:
			c.unregister(id)
			return ErrClosed
		}
	}
}

// Close tears the connection down. Pending calls return ErrClosed and the
// Notifications channel closes.
func (c *Conn) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	close(c.closeCh)
	c.dialCancel()
	cur := c.cur
	c.mu.Unlock()
	if cur != nil {
		cur.Close()
	}
	<-c.runDone
	close(c.notifyCh)
	return nil
}

// awaitConnected blocks until the Conn is serving, ctx ends, or Close.
func (c *Conn) awaitConnected(ctx context.Context) error {
	c.mu.Lock()
	ready := c.connReady
	c.mu.Unlock()
	select {
	case <-ready:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	case <-c.closeCh:
		return ErrClosed
	}
}

// register creates a pending request slot.
func (c *Conn) register() (uint64, chan result) {
	id := c.reqID.Add(1)
	ch := make(chan result, 1)
	c.mu.Lock()
	c.pending[id] = ch
	c.mu.Unlock()
	return id, ch
}

func (c *Conn) unregister(id uint64) {
	c.mu.Lock()
	delete(c.pending, id)
	c.mu.Unlock()
}

// resolve completes a pending request, if still registered.
func (c *Conn) resolve(id uint64, r result) {
	c.mu.Lock()
	ch, ok := c.pending[id]
	if ok {
		delete(c.pending, id)
	}
	c.mu.Unlock()
	if ok {
		ch <- r
	}
}

// send writes one frame to the current connection.
func (c *Conn) send(f clientproto.Frame) error {
	c.mu.Lock()
	conn := c.cur
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return ErrClosed
	}
	if conn == nil {
		return errNotConnected
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	conn.SetWriteDeadline(time.Now().Add(c.opts.DialTimeout))
	if err := clientproto.WriteFrame(conn, f); err != nil {
		conn.Close() // the read loop notices and reconnects
		return err
	}
	return nil
}

// connect dials one node, negotiates the protocol, logs in (resuming with
// the held token), replays the subscription set, and installs the
// connection as current.
func (c *Conn) connect(ctx context.Context, addr string) (net.Conn, error) {
	d := net.Dialer{Timeout: c.opts.DialTimeout}
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	conn.SetDeadline(time.Now().Add(c.opts.DialTimeout))
	version, err := clientproto.Hello(conn)
	if err != nil {
		conn.Close()
		return nil, err
	}
	c.mu.Lock()
	token := c.token
	c.mu.Unlock()
	loginID := c.reqID.Add(1)
	login := &clientproto.Login{ReqID: loginID, Handle: c.opts.Handle, ResumeToken: token}
	if err := clientproto.WriteFrame(conn, login); err != nil {
		conn.Close()
		return nil, err
	}
	// The login reply is read synchronously; nothing else arrives first.
	f, err := clientproto.ReadFrame(conn)
	if err != nil {
		conn.Close()
		return nil, err
	}
	switch r := f.(type) {
	case *clientproto.Ack:
		if r.ReqID != loginID {
			conn.Close()
			return nil, fmt.Errorf("client: login ack for wrong request %d", r.ReqID)
		}
		if len(r.Token) > 0 {
			token = r.Token
		}
	case *clientproto.Nak:
		conn.Close()
		return nil, fmt.Errorf("client: login refused by %s: %s", addr, r.Reason)
	default:
		conn.Close()
		return nil, fmt.Errorf("client: unexpected login reply %T", f)
	}
	conn.SetDeadline(time.Time{})

	// Install, re-assert the desired subscription set, and only then
	// mark the Conn connected. On a version-2 server one LeaseRefresh
	// frame carries the whole set: each channel owner refreshes the
	// subscriber's lease and re-points its entry record at this node —
	// failover without a Subscribe replay. A version-1 server still gets
	// the old per-URL replay. Keeping connReady unreadied until the
	// frames are written means a concurrent Subscribe or Unsubscribe
	// call's frame is ordered AFTER the re-assert, so the server's final
	// state matches the desired set.
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		conn.Close()
		return nil, ErrClosed
	}
	c.cur = conn
	c.curAddr = addr
	c.token = token
	c.version = version
	replay := make([]string, 0, len(c.subs))
	for u := range c.subs {
		replay = append(replay, u)
	}
	c.mu.Unlock()
	if len(replay) > 0 && version >= 2 {
		for _, chunk := range chunkLeaseURLs(replay) {
			id, ch := c.register()
			if err := c.send(&clientproto.LeaseRefresh{ReqID: id, URLs: chunk}); err != nil {
				c.unregister(id) // the read loop will reconnect and re-assert
				break
			}
			// Watch the reply: a nak (a server that cannot route leases)
			// falls back to the explicit replay so the subscriptions are
			// not stranded until the next reconnect.
			go c.watchLeaseRefresh(chunk, ch)
		}
	} else {
		for _, u := range replay {
			if !c.replaySubscribe(u) {
				break // the read loop will reconnect and replay again
			}
		}
	}
	c.mu.Lock()
	close(c.connReady)
	c.mu.Unlock()
	return conn, nil
}

// leaseRefreshChunkBytes bounds the URL payload of one LeaseRefresh
// frame, far below the protocol's 1 MiB MaxFrame: a frame the server
// would reject as oversized gets resent identically on every reconnect,
// wedging the connection in a flap loop, so it must never be built.
const leaseRefreshChunkBytes = 256 * 1024

// chunkLeaseURLs splits a subscription set into LeaseRefresh-sized
// batches.
func chunkLeaseURLs(urls []string) [][]string {
	var chunks [][]string
	var cur []string
	size := 0
	for _, u := range urls {
		// ~8 bytes of length-prefix/framing slack per URL.
		if len(cur) > 0 && size+len(u)+8 > leaseRefreshChunkBytes {
			chunks = append(chunks, cur)
			cur, size = nil, 0
		}
		cur = append(cur, u)
		size += len(u) + 8
	}
	if len(cur) > 0 {
		chunks = append(chunks, cur)
	}
	return chunks
}

// watchLeaseRefresh follows one reconnect-time LeaseRefresh: an ack or a
// disconnect ends it (the owners were told, or the next reconnect
// re-asserts anyway); a nak falls back to per-URL Subscribe replay.
func (c *Conn) watchLeaseRefresh(urls []string, ch chan result) {
	var r result
	select {
	case r = <-ch:
	case <-c.closeCh:
		return
	}
	if r.err != nil || r.nak == "" {
		return
	}
	for _, u := range urls {
		c.mu.Lock()
		_, want := c.subs[u]
		c.mu.Unlock()
		if !want {
			continue
		}
		if !c.replaySubscribe(u) {
			return
		}
	}
}

// replaySubscribe sends one re-asserting Subscribe for url and follows
// the reply with watchReplay (a nak would otherwise strand the
// subscription — believed live here, unknown at the node — until the
// next reconnect; a concurrent Subscribe call waiting on this URL sends
// its own request and gets its own ack). It reports whether the frame
// was written; a send failure means the connection died and the next
// reconnect re-asserts everything.
func (c *Conn) replaySubscribe(url string) bool {
	id, ch := c.register()
	if err := c.send(&clientproto.Subscribe{ReqID: id, URL: url}); err != nil {
		c.unregister(id)
		return false
	}
	go c.watchReplay(url, ch)
	return true
}

// watchReplay follows one replayed Subscribe: acks and disconnects end
// it (the next reconnect replays again), a nak retries after RetryWait
// for as long as the URL stays in the desired set.
func (c *Conn) watchReplay(url string, ch chan result) {
	for {
		var r result
		select {
		case r = <-ch:
		case <-c.closeCh:
			return
		}
		if r.err != nil || r.nak == "" {
			return
		}
		select {
		case <-time.After(c.opts.RetryWait):
		case <-c.closeCh:
			return
		}
		c.mu.Lock()
		_, want := c.subs[url]
		c.mu.Unlock()
		if !want {
			return
		}
		id, nch := c.register()
		if err := c.send(&clientproto.Subscribe{ReqID: id, URL: url}); err != nil {
			c.unregister(id)
			return
		}
		ch = nch
	}
}

// disconnect clears the current connection and fails every pending
// request so blocked callers retry.
func (c *Conn) disconnect() {
	c.mu.Lock()
	c.cur = nil
	c.curAddr = ""
	c.connReady = make(chan struct{})
	pending := c.pending
	c.pending = make(map[uint64]chan result)
	c.mu.Unlock()
	for _, ch := range pending {
		ch <- result{err: errNotConnected}
	}
}

// run owns the connection lifecycle: read until failure, then sweep the
// address list (starting after the failed node) until one accepts.
func (c *Conn) run(conn net.Conn, addrIdx int) {
	defer close(c.runDone)
	for {
		pingStop := make(chan struct{})
		if c.opts.PingInterval > 0 {
			go c.pingLoop(conn, pingStop)
		}
		c.readAll(conn)
		close(pingStop)
		conn.Close()
		c.disconnect()

		conn = nil
		for conn == nil {
			for i := 1; i <= len(c.addrs); i++ {
				select {
				case <-c.closeCh:
					return
				default:
				}
				idx := (addrIdx + i) % len(c.addrs)
				nc, err := c.connect(c.dialCtx, c.addrs[idx])
				if err == nil {
					conn, addrIdx = nc, idx
					break
				}
				if errors.Is(err, ErrClosed) || c.dialCtx.Err() != nil {
					return
				}
			}
			if conn == nil {
				select {
				case <-time.After(c.opts.RetryWait):
				case <-c.closeCh:
					return
				}
			}
		}
	}
}

// readAll dispatches inbound frames until the connection fails. Reads
// are buffered (two raw reads per frame would double syscalls on the
// notification hot path).
func (c *Conn) readAll(conn net.Conn) {
	br := bufio.NewReader(conn)
	for {
		if c.opts.PingInterval > 0 {
			conn.SetReadDeadline(time.Now().Add(3 * c.opts.PingInterval))
		}
		f, err := clientproto.ReadFrame(br)
		if err != nil {
			return
		}
		switch m := f.(type) {
		case *clientproto.Ack:
			c.resolve(m.ReqID, result{})
		case *clientproto.Nak:
			c.resolve(m.ReqID, result{nak: m.Reason})
		case *clientproto.Notify:
			c.deliver(corona.Notification{
				Client:  c.opts.Handle,
				Channel: m.Channel,
				Version: m.Version,
				Diff:    m.Diff,
				At:      m.At,
			})
		case *clientproto.ServerInfo:
			c.mu.Lock()
			c.lastInfo = ServerInfo{
				Node:                      m.Node,
				Peers:                     append([]string(nil), m.Peers...),
				StoreEnabled:              m.Store.Enabled,
				StoreGeneration:           m.Store.Generation,
				StoreWALBytes:             int64(m.Store.WALBytes),
				StoreRecordsSinceSnapshot: int(m.Store.RecordsSinceSnapshot),
				StoreErr:                  m.Store.Err,
				HasFanout:                 m.HasFanout,
				Fanout:                    m.Fanout,
			}
			c.haveInfo = true
			c.mu.Unlock()
		default:
			return // client-to-server frame from a server: protocol error
		}
	}
}

// deliver hands one notification to the application, dropping the oldest
// buffered one when the channel is full so the stream stays current.
func (c *Conn) deliver(n corona.Notification) {
	for {
		select {
		case c.notifyCh <- n:
			return
		default:
			select {
			case <-c.notifyCh:
				c.dropped.Add(1)
			default:
			}
		}
	}
}

// pingLoop probes connection liveness; the acks also refresh ServerInfo
// and keep the read deadline fed. On version-2 servers each tick also
// heartbeats the entry-node lease for every subscribed channel, which is
// what keeps the owners' lease records fresh — an owner that stops
// hearing these re-routes the subscriber's notifications elsewhere.
func (c *Conn) pingLoop(conn net.Conn, stop chan struct{}) {
	t := time.NewTicker(c.opts.PingInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			id, _ := c.register()
			if err := c.send(&clientproto.Ping{ReqID: id}); err != nil {
				c.unregister(id)
				conn.Close()
				return
			}
			c.mu.Lock()
			v2 := c.version >= 2
			urls := make([]string, 0, len(c.subs))
			for u := range c.subs {
				urls = append(urls, u)
			}
			c.mu.Unlock()
			if v2 && len(urls) > 0 {
				for _, chunk := range chunkLeaseURLs(urls) {
					id, _ := c.register()
					if err := c.send(&clientproto.LeaseRefresh{ReqID: id, URLs: chunk}); err != nil {
						c.unregister(id)
						conn.Close()
						return
					}
				}
			}
		case <-stop:
			return
		case <-c.closeCh:
			return
		}
	}
}

package client

import (
	"context"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"corona/internal/clientproto"
	"corona/internal/im"
)

// fakeBackend is a minimal clientproto.Backend: it records subscriptions
// and lets the test push notifications at attached clients.
type fakeBackend struct {
	name string

	mu         sync.Mutex
	subs       map[string][]string // client -> urls, in arrival order
	nakSub     string              // nak any subscribe for this URL
	nakTimes   int                 // ... only this many times (0 = forever)
	deliverers map[string]*attachRec
}

type attachRec struct {
	fn func(im.Notification)
}

func newFakeBackend(name string) *fakeBackend {
	return &fakeBackend{
		name:       name,
		subs:       make(map[string][]string),
		deliverers: make(map[string]*attachRec),
	}
}

func (b *fakeBackend) Subscribe(client, url string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if url == b.nakSub {
		if b.nakTimes == 0 {
			return fmt.Errorf("no such channel")
		}
		b.nakTimes--
		if b.nakTimes == 0 {
			b.nakSub = ""
		}
		return fmt.Errorf("transient refusal")
	}
	b.subs[client] = append(b.subs[client], url)
	return nil
}

func (b *fakeBackend) Unsubscribe(client, url string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.subs[client] = append(b.subs[client], "-"+url)
	return nil
}

// RefreshLeases mirrors the real backend's semantics: a lease refresh is
// an idempotent subscription assert at the channel owner, so the fake
// records it through Subscribe — including Subscribe's nak injection, so
// tests can drive the SDK's fallback-to-replay path.
func (b *fakeBackend) RefreshLeases(client string, urls []string) error {
	for _, u := range urls {
		if err := b.Subscribe(client, u); err != nil {
			return err
		}
	}
	return nil
}

func (b *fakeBackend) Attach(client string, deliver func(im.Notification)) func() {
	rec := &attachRec{fn: deliver}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.deliverers[client] = rec
	return func() {
		b.mu.Lock()
		defer b.mu.Unlock()
		if b.deliverers[client] == rec {
			delete(b.deliverers, client)
		}
	}
}

func (b *fakeBackend) Info() clientproto.ServerInfo {
	return clientproto.ServerInfo{Node: b.name}
}

func (b *fakeBackend) subscribed(client string) []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]string(nil), b.subs[client]...)
}

// notify pushes one notification at the attached client, reporting
// whether one was attached.
func (b *fakeBackend) notify(client string, n im.Notification) bool {
	b.mu.Lock()
	rec, ok := b.deliverers[client]
	b.mu.Unlock()
	if ok {
		rec.fn(n)
	}
	return ok
}

func (b *fakeBackend) waitAttached(t *testing.T, client string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		b.mu.Lock()
		_, ok := b.deliverers[client]
		b.mu.Unlock()
		if ok {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("%s: %s never attached", b.name, client)
}

func startServer(t *testing.T, b clientproto.Backend) *clientproto.Server {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := clientproto.Serve(l, b)
	t.Cleanup(func() { s.Close() })
	return s
}

func testOptions() Options {
	return Options{
		Handle:    "alice",
		RetryWait: 20 * time.Millisecond,
		// Pings off: tests drive liveness through explicit closes.
		PingInterval: -1,
	}
}

func TestDialSubscribeNotify(t *testing.T) {
	b := newFakeBackend("n1")
	s := startServer(t, b)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	c, err := Dial(ctx, []string{s.Addr()}, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Subscribe(ctx, "http://x/f.xml"); err != nil {
		t.Fatal(err)
	}
	if got := b.subscribed("alice"); len(got) == 0 || got[0] != "http://x/f.xml" {
		t.Fatalf("server-side subs = %v", got)
	}

	at := time.Unix(1700000000, 0)
	b.notify("alice", im.Notification{Client: "alice", Channel: "http://x/f.xml", Version: 7, Diff: "dd", At: at})
	select {
	case n := <-c.Notifications():
		if n.Client != "alice" || n.Channel != "http://x/f.xml" || n.Version != 7 || n.Diff != "dd" || !n.At.Equal(at) {
			t.Fatalf("notification = %+v", n)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no notification delivered")
	}

	// ServerInfo arrived with the login ack.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if info, ok := c.ServerInfo(); ok {
			if info.Node != "n1" {
				t.Fatalf("ServerInfo.Node = %q", info.Node)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no ServerInfo received")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestSubscribeNak(t *testing.T) {
	b := newFakeBackend("n1")
	b.nakSub = "http://bad/f.xml"
	s := startServer(t, b)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	c, err := Dial(ctx, []string{s.Addr()}, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Subscribe(ctx, "http://bad/f.xml"); err == nil {
		t.Fatal("refused subscribe returned nil")
	}
	if got := c.Subscriptions(); len(got) != 0 {
		t.Fatalf("refused URL stayed in desired set: %v", got)
	}
}

func TestDialFailsWhenAllDown(t *testing.T) {
	// A listener that is closed immediately: connection refused.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := Dial(ctx, []string{addr}, testOptions()); err == nil {
		t.Fatal("Dial succeeded with no server")
	}
	if _, err := Dial(ctx, nil, testOptions()); err == nil {
		t.Fatal("Dial succeeded with no addresses")
	}
	if _, err := Dial(ctx, []string{addr}, Options{}); err == nil {
		t.Fatal("Dial succeeded without a handle")
	}
}

func TestFailoverResumesAndReplaysSubscriptions(t *testing.T) {
	b1 := newFakeBackend("n1")
	b2 := newFakeBackend("n2")
	s1 := startServer(t, b1)
	s2 := startServer(t, b2)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	c, err := Dial(ctx, []string{s1.Addr(), s2.Addr()}, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Subscribe(ctx, "http://x/a.xml"); err != nil {
		t.Fatal(err)
	}
	if err := c.Subscribe(ctx, "http://x/b.xml"); err != nil {
		t.Fatal(err)
	}
	if got := c.Addr(); got != s1.Addr() {
		t.Fatalf("serving addr = %s, want %s", got, s1.Addr())
	}

	// Kill node 1. The SDK must fail over to node 2, resume, and
	// re-assert both subscriptions (one LeaseRefresh frame on a v2
	// server; the fake maps each refreshed URL through Subscribe) without
	// the application doing anything.
	s1.Close()
	b2.waitAttached(t, "alice")
	deadline := time.Now().Add(5 * time.Second)
	for {
		subs := b2.subscribed("alice")
		if len(subs) >= 2 {
			seen := map[string]bool{}
			for _, s := range subs {
				seen[s] = true
			}
			if !seen["http://x/a.xml"] || !seen["http://x/b.xml"] {
				t.Fatalf("replayed subs = %v", subs)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("subscriptions never replayed: %v", b2.subscribed("alice"))
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := c.Addr(); got != s2.Addr() {
		t.Fatalf("after failover serving addr = %s, want %s", got, s2.Addr())
	}

	// Notifications keep flowing from the new node.
	b2.notify("alice", im.Notification{Client: "alice", Channel: "http://x/a.xml", Version: 2})
	select {
	case n := <-c.Notifications():
		if n.Channel != "http://x/a.xml" || n.Version != 2 {
			t.Fatalf("post-failover notification = %+v", n)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no notification after failover")
	}

	// Subscribe during the failed-over state still works.
	if err := c.Subscribe(ctx, "http://x/c.xml"); err != nil {
		t.Fatal(err)
	}
}

func TestReplayRetriesNakedSubscription(t *testing.T) {
	b1 := newFakeBackend("n1")
	b2 := newFakeBackend("n2")
	// The failover node refuses the replayed subscription twice
	// (a transient condition, e.g. mid-handoff), then accepts.
	b2.nakSub = "http://x/f.xml"
	b2.nakTimes = 2
	s1 := startServer(t, b1)
	s2 := startServer(t, b2)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	c, err := Dial(ctx, []string{s1.Addr(), s2.Addr()}, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Subscribe(ctx, "http://x/f.xml"); err != nil {
		t.Fatal(err)
	}

	s1.Close()
	// The replay is naked twice; the watcher must keep retrying until
	// the node accepts, with no application involvement.
	deadline := time.Now().Add(5 * time.Second)
	for len(b2.subscribed("alice")) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("naked replay never retried to success")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestSubscribeBlocksThroughReconnect(t *testing.T) {
	b1 := newFakeBackend("n1")
	b2 := newFakeBackend("n2")
	s1 := startServer(t, b1)
	s2 := startServer(t, b2)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	c, err := Dial(ctx, []string{s1.Addr(), s2.Addr()}, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Close the serving node, then immediately Subscribe: the call must
	// ride out the reconnect and land on node 2.
	s1.Close()
	if err := c.Subscribe(ctx, "http://x/f.xml"); err != nil {
		t.Fatalf("subscribe across reconnect: %v", err)
	}
	subs := b2.subscribed("alice")
	if len(subs) == 0 {
		t.Fatal("subscription did not land on the failover node")
	}
}

func TestNotificationOverflowDropsOldest(t *testing.T) {
	b := newFakeBackend("n1")
	s := startServer(t, b)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	opts := testOptions()
	opts.NotifyBuffer = 1
	c, err := Dial(ctx, []string{s.Addr()}, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	b.waitAttached(t, "alice")
	for v := uint64(1); v <= 3; v++ {
		b.notify("alice", im.Notification{Client: "alice", Channel: "u", Version: v})
	}
	// The stream stays current: eventually version 3 is readable and two
	// drops are counted.
	deadline := time.Now().Add(5 * time.Second)
	for c.NotificationsDropped() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("dropped = %d, want 2", c.NotificationsDropped())
		}
		time.Sleep(5 * time.Millisecond)
	}
	select {
	case n := <-c.Notifications():
		if n.Version != 3 {
			t.Fatalf("surviving notification v%d, want v3", n.Version)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("nothing readable after overflow")
	}
}

func TestCloseEndsNotificationStream(t *testing.T) {
	b := newFakeBackend("n1")
	s := startServer(t, b)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	c, err := Dial(ctx, []string{s.Addr()}, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case _, ok := <-c.Notifications():
		if ok {
			t.Fatal("notification after Close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Notifications channel not closed by Close")
	}
	if err := c.Subscribe(ctx, "http://x/f.xml"); err != ErrClosed {
		t.Fatalf("Subscribe after Close = %v, want ErrClosed", err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("second Close = %v", err)
	}
}

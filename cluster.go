package corona

import (
	"fmt"
	"sync"
	"time"

	"corona/internal/clock"
	"corona/internal/core"
	"corona/internal/eventsim"
	"corona/internal/feed"
	"corona/internal/ids"
	"corona/internal/pastry"
	"corona/internal/simnet"
	"corona/internal/webserver"
)

// cloud is the shared assembly behind Cluster and Simulation: N Corona
// nodes on a message fabric, one origin hosting generator-backed feeds,
// and a dispatcher delivering notifications to Go callbacks.
type cloud struct {
	opts   Options
	origin *webserver.Origin
	nodes  []*core.Node
	net    *simnet.Network
	clk    clock.Clock
	// exec serializes operations that drive protocol activity onto the
	// goroutine that owns the event loop. Simulations run inline (the
	// caller owns the loop); real-time clusters enqueue onto the driver.
	exec func(func())

	mu        sync.Mutex
	callbacks map[string]func(Notification)
	seq       int
	feedSeed  int64
}

// notifier adapts callback dispatch to core.Notifier.
type notifier struct{ c *cloud }

// Notify implements core.Notifier.
func (n notifier) Notify(client, channelURL string, version uint64, diff string, at time.Time) {
	n.c.mu.Lock()
	cb := n.c.callbacks[client]
	n.c.mu.Unlock()
	if at.IsZero() {
		at = n.c.clk.Now()
	}
	if cb != nil {
		cb(Notification{
			Client:  client,
			Channel: channelURL,
			Version: version,
			Diff:    diff,
			At:      at,
		})
	}
}

// NotifyBatch implements core.Notifier: callback dispatch has no shared
// encode to amortize, so a batch is the per-client path in a loop.
func (n notifier) NotifyBatch(clients []string, channelURL string, version uint64, diff string, at time.Time) {
	for _, c := range clients {
		n.Notify(c, channelURL, version, diff, at)
	}
}

// NotifyCount implements core.Notifier (unused: clusters track clients).
func (n notifier) NotifyCount(channelURL string, version uint64, count int, at time.Time) {}

// buildCloud assembles nodes over the given simulator-backed network.
func buildCloud(opts Options, sim *eventsim.Sim, net *simnet.Network, clk clock.Clock) *cloud {
	c := &cloud{
		opts:      opts,
		origin:    webserver.NewOrigin(),
		net:       net,
		clk:       clk,
		exec:      func(f func()) { f() },
		callbacks: make(map[string]func(Notification)),
		feedSeed:  opts.Seed * 7919,
	}
	fetcher := &core.OriginFetcher{Origin: c.origin, Clock: clk}
	rng := sim.RNG("corona-cluster-ids")
	overlays := make([]*pastry.Node, opts.Nodes)
	for i := range overlays {
		ep := fmt.Sprintf("sim://%d", i)
		var node *pastry.Node
		endpoint := net.Attach(ep, func(m pastry.Message) {
			if node != nil {
				node.Deliver(m)
			}
		})
		node = pastry.NewNode(pastry.DefaultConfig(), pastry.Addr{ID: ids.Random(rng), Endpoint: ep}, endpoint, clk)
		overlays[i] = node
	}
	pastry.BuildStaticOverlay(overlays)
	for i, overlay := range overlays {
		cfg := core.DefaultConfig()
		cfg.Policy = core.PolicyConfig{Scheme: opts.Scheme.coreScheme(), FastTarget: opts.FastTarget}
		cfg.PollInterval = opts.PollInterval
		cfg.MaintenanceInterval = opts.MaintenanceInterval
		cfg.NodeCount = opts.Nodes
		cfg.CountSubscribersOnly = false
		cfg.OwnerReplicas = opts.Replicas
		cfg.DelegateThreshold = opts.DelegateThreshold
		cfg.ContentMode = opts.ContentMode
		cfg.Seed = opts.Seed + int64(i)
		n := core.NewNode(cfg, overlay, clk, fetcher, notifier{c}, nil)
		c.nodes = append(c.nodes, n)
		n.Start()
	}
	return c
}

// HostFeed registers a synthetic RSS feed at the given URL that publishes
// fresh items every updateEvery. It returns an error for duplicate URLs.
func (c *cloud) HostFeed(url string, updateEvery time.Duration) error {
	if updateEvery <= 0 {
		return fmt.Errorf("corona: updateEvery must be positive")
	}
	c.mu.Lock()
	c.seq++
	seed := c.feedSeed + int64(c.seq)
	c.mu.Unlock()
	for _, existing := range c.origin.Channels() {
		if existing == url {
			return fmt.Errorf("corona: feed %q already hosted", url)
		}
	}
	c.origin.Host(webserver.ChannelConfig{
		URL:       url,
		Process:   webserver.PeriodicProcess{Origin: c.clk.Now(), Interval: updateEvery},
		Generator: feed.NewGenerator(url, seed),
	})
	return nil
}

// entryNode picks the overlay entry point for a client deterministically.
func (c *cloud) entryNode(client string) *core.Node {
	h := ids.HashString(client)
	return c.nodes[int(h[0])%len(c.nodes)]
}

// Subscribe registers interest in url; notifications invoke fn. The
// subscription propagates asynchronously through the overlay.
func (c *cloud) Subscribe(client, url string, fn func(Notification)) error {
	if fn == nil {
		return fmt.Errorf("corona: nil notification callback")
	}
	c.mu.Lock()
	c.callbacks[client] = fn
	c.mu.Unlock()
	c.exec(func() { c.entryNode(client).Subscribe(client, url) })
	return nil
}

// Unsubscribe removes interest in url for the client.
func (c *cloud) Unsubscribe(client, url string) error {
	c.exec(func() { c.entryNode(client).Unsubscribe(client, url) })
	return nil
}

// ChannelStatus reports the cloud's view of a channel.
func (c *cloud) ChannelStatus(url string) ChannelStatus {
	st := ChannelStatus{URL: url}
	id := ids.HashString(url)
	for _, n := range c.nodes {
		if level, polling, ok := n.ChannelLevel(url); ok && polling {
			st.Pollers++
			if n.Overlay().IsRoot(id) {
				st.Level = level
				s := n.Stats()
				_ = s
			}
		}
	}
	for _, n := range c.nodes {
		if n.Overlay().IsRoot(id) {
			st.Subscribers = n.Stats().SubscriptionsHeld
			if info, ok := n.Channel(url); ok {
				st.Delegates = info.Delegates
			}
			break
		}
	}
	return st
}

// ChannelActivity reports each node's cumulative fan-out work, labeled
// with its role for the given channel: the owner disseminates through its
// delegates, delegates fan their partitions out to entry nodes, everyone
// else stays silent. Nodes with no fan-out activity and no role are
// omitted. Counters are node totals, so the breakdown is sharpest when
// one hot channel dominates the cloud (the flash-crowd scenario).
func (c *cloud) ChannelActivity(url string) []NodeActivity {
	var out []NodeActivity
	for _, n := range c.nodes {
		a := NodeActivity{Node: n.Self().ID.String()[:8]}
		if info, ok := n.Channel(url); ok {
			a.Owner = info.Owner
			a.Delegate = info.DelegateFor > 0
		}
		s := n.Stats()
		a.Notifications = s.NotificationsSent
		a.NotifyBatches = s.NotifyBatchesSent
		a.DelegatePushes = s.DelegateUpdates
		if a.Owner || a.Delegate || a.Notifications > 0 || a.NotifyBatches > 0 {
			out = append(out, a)
		}
	}
	return out
}

// Stats summarizes activity across the cloud.
func (c *cloud) Stats() Stats {
	s := Stats{Nodes: len(c.nodes)}
	load := c.origin.TotalLoad()
	s.Polls = load.Polls
	s.BytesServed = load.BytesServed
	for _, n := range c.nodes {
		ns := n.Stats()
		s.UpdatesDetected += ns.UpdatesDetected
		s.Notifications += ns.NotificationsSent
	}
	s.WireBytes = c.net.Bytes()
	s.MessagesDropped = c.net.Dropped()
	return s
}

func (c *cloud) stop() {
	for _, n := range c.nodes {
		n.Stop()
	}
}

// Simulation is a Corona cloud under a virtual clock: protocol hours run
// in real milliseconds, deterministically. It is the embedded counterpart
// of the experiment harness that regenerates the paper's figures.
type Simulation struct {
	*cloud
	sim *eventsim.Sim
}

// NewSimulation builds a virtual-time cluster.
func NewSimulation(opts Options) (*Simulation, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	if !opts.ContentMode {
		// Feeds hosted through HostFeed are generator-backed; content
		// mode exercises the real diff path by default.
		opts.ContentMode = true
	}
	sim := eventsim.New(opts.Seed)
	net := simnet.New(sim, simnet.FixedLatency(10*time.Millisecond))
	return &Simulation{cloud: buildCloud(opts, sim, net, sim), sim: sim}, nil
}

// RunFor advances virtual time by d, executing all protocol activity due
// in that window. Notification callbacks run on the calling goroutine.
func (s *Simulation) RunFor(d time.Duration) { s.sim.RunFor(d) }

// Now returns the current virtual time.
func (s *Simulation) Now() time.Time { return s.sim.Now() }

// Close stops all nodes.
func (s *Simulation) Close() { s.stop() }

// Cluster is an in-process, real-time Corona cloud: the same protocol
// stack driven by the wall clock, for demos and embedding. Notification
// callbacks run on timer goroutines; keep them short or hand off.
type Cluster struct {
	*cloud
	driver *realDriver
}

// NewCluster builds a real-time cluster. Poll intervals of seconds make
// interactive demos practical; production clouds use the paper's 30 min.
func NewCluster(opts Options) (*Cluster, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	if !opts.ContentMode {
		opts.ContentMode = true
	}
	driver := newRealDriver(opts.Seed)
	net := simnet.New(driver.sim, simnet.FixedLatency(time.Millisecond))
	c := &Cluster{driver: driver}
	c.cloud = buildCloud(opts, driver.sim, net, driver)
	c.cloud.exec = func(f func()) { driver.AfterFunc(0, f) }
	driver.start()
	return c, nil
}

// Close stops the cluster and its driver goroutine.
func (c *Cluster) Close() {
	c.stop()
	c.driver.stop()
}

// realDriver runs an eventsim in step with the wall clock: events fire
// when their virtual due time reaches wall time. This reuses the
// deterministic single-threaded protocol stack for real-time operation,
// serializing all protocol work (callbacks included) on one goroutine.
//
// Timer registrations from arbitrary goroutines — including from inside
// event callbacks — land in a pending queue the loop drains, so AfterFunc
// never touches the simulator concurrently with the loop.
type realDriver struct {
	sim     *eventsim.Sim
	started time.Time

	pendMu  sync.Mutex
	pending []*pendingTimer
	done    bool
}

// pendingTimer is a timer handle that may not have reached the simulator
// yet. Stop works in either state, and never touches the simulator: only
// the driver goroutine may mutate the event heap, so cancellation is a
// flag the wrapped callback checks at fire time (the dead entry stays in
// the heap harmlessly).
type pendingTimer struct {
	mu      sync.Mutex
	delay   time.Duration
	fn      func()
	stopped bool
	fired   bool
}

// Stop implements clock.Timer.
func (p *pendingTimer) Stop() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.stopped || p.fired {
		return false
	}
	p.stopped = true
	return true
}

func newRealDriver(seed int64) *realDriver {
	return &realDriver{sim: eventsim.New(seed), started: time.Now()}
}

// Now maps wall time onto the simulator's epoch-based timeline.
func (d *realDriver) Now() time.Time {
	return eventsim.Epoch.Add(time.Since(d.started))
}

// AfterFunc schedules f to run on the driver goroutine after wall-clock
// delay.
func (d *realDriver) AfterFunc(delay time.Duration, f func()) clock.Timer {
	p := &pendingTimer{delay: delay, fn: f}
	d.pendMu.Lock()
	d.pending = append(d.pending, p)
	d.pendMu.Unlock()
	return p
}

func (d *realDriver) start() {
	go d.loop()
}

func (d *realDriver) stop() {
	d.pendMu.Lock()
	d.done = true
	d.pendMu.Unlock()
}

// loop advances the simulator to the current wall-derived instant, first
// transferring pending timer registrations. Only this goroutine touches
// the simulator after start.
func (d *realDriver) loop() {
	for {
		d.pendMu.Lock()
		if d.done {
			d.pendMu.Unlock()
			return
		}
		pending := d.pending
		d.pending = nil
		d.pendMu.Unlock()

		for _, p := range pending {
			p.mu.Lock()
			if !p.stopped {
				fn := p.fn
				d.sim.AfterFunc(p.delay, func() {
					p.mu.Lock()
					dead := p.stopped
					if !dead {
						p.fired = true
					}
					p.mu.Unlock()
					if !dead {
						fn()
					}
				})
			}
			p.mu.Unlock()
		}
		d.sim.RunUntil(d.Now())
		time.Sleep(time.Millisecond)
	}
}

// Command corona-client is a minimal subscriber for a live Corona node's
// IM port: it logs in, subscribes to the given URLs, and prints
// notifications as they arrive — the "feed reader" end of the system.
//
// Usage:
//
//	corona-client -node 127.0.0.1:9101 -handle alice \
//	    http://127.0.0.1:8080/feed/0.xml http://127.0.0.1:8080/feed/1.xml
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"net"
	"strconv"
	"strings"
)

func main() {
	nodeAddr := flag.String("node", "127.0.0.1:9101", "corona-node IM address")
	handle := flag.String("handle", "reader", "IM handle to log in as")
	flag.Parse()
	urls := flag.Args()
	if len(urls) == 0 {
		log.Fatal("usage: corona-client -node <addr> -handle <name> <url>...")
	}

	conn, err := net.Dial("tcp", *nodeAddr)
	if err != nil {
		log.Fatalf("connecting to node: %v", err)
	}
	defer conn.Close()
	out := bufio.NewWriter(conn)
	send := func(line string) {
		fmt.Fprintln(out, line)
		out.Flush()
	}
	send("LOGIN " + *handle)
	for _, u := range urls {
		send("SUBSCRIBE " + u)
	}
	log.Printf("corona-client: logged in as %s, watching %d channels", *handle, len(urls))

	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "MSG "):
			rest := strings.TrimPrefix(line, "MSG ")
			sp := strings.IndexByte(rest, ' ')
			if sp < 0 {
				continue
			}
			body, err := strconv.Unquote(rest[sp+1:])
			if err != nil {
				body = rest[sp+1:]
			}
			fmt.Printf("--- from %s ---\n%s\n", rest[:sp], body)
		case strings.HasPrefix(line, "ERR "):
			log.Printf("node error: %s", strings.TrimPrefix(line, "ERR "))
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatalf("connection lost: %v", err)
	}
}

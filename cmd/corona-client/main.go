// Command corona-client is a subscriber for a live Corona cloud, built on
// the corona/client SDK: it connects to one of the given nodes' client
// ports, subscribes to the given URLs, and prints notifications as they
// arrive — the "feed reader" end of the system. Given several node
// addresses it survives node failure: the SDK resumes the session and
// replays the subscriptions against the next address.
//
// Usage:
//
//	corona-client -nodes 127.0.0.1:9201,127.0.0.1:9202 -handle alice \
//	    http://127.0.0.1:8080/feed/0.xml http://127.0.0.1:8080/feed/1.xml
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"corona/client"
)

func main() {
	nodeList := flag.String("nodes", "127.0.0.1:9201", "comma-separated corona-node client addresses (failover order)")
	handle := flag.String("handle", "reader", "subscriber handle")
	timeout := flag.Duration("timeout", 10*time.Second, "per-request timeout (dial, subscribe)")
	flag.Parse()
	urls := flag.Args()
	if len(urls) == 0 {
		log.Fatal("usage: corona-client -nodes <addr,addr,...> -handle <name> <url>...")
	}
	var addrs []string
	for _, a := range strings.Split(*nodeList, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	conn, err := client.Dial(ctx, addrs, client.Options{Handle: *handle})
	cancel()
	if err != nil {
		log.Fatalf("connecting: %v", err)
	}
	defer conn.Close()
	for _, u := range urls {
		ctx, cancel := context.WithTimeout(context.Background(), *timeout)
		err := conn.Subscribe(ctx, u)
		cancel()
		if err != nil {
			log.Fatalf("subscribe %s: %v", u, err)
		}
	}
	log.Printf("corona-client: %s via %s, watching %d channels", *handle, conn.Addr(), len(urls))
	if info, ok := conn.ServerInfo(); ok {
		log.Printf("corona-client: node %s, %d ring peers, store enabled=%v",
			info.Node, len(info.Peers), info.StoreEnabled)
	}

	for n := range conn.Notifications() {
		fmt.Printf("--- %s v%d at %s ---\n%s\n",
			n.Channel, n.Version, n.At.Format(time.RFC3339), n.Diff)
	}
}

package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestParseBenchLine(t *testing.T) {
	b, ok := parseBenchLine("BenchmarkWireEncode/1k-8   12345   678.9 ns/op   1024 B/op   3 allocs/op")
	if !ok {
		t.Fatal("parse failed")
	}
	if b.Name != "BenchmarkWireEncode/1k-8" || b.Iterations != 12345 {
		t.Fatalf("parsed %+v", b)
	}
	if b.Metrics["ns/op"] != 678.9 || b.Metrics["B/op"] != 1024 || b.Metrics["allocs/op"] != 3 {
		t.Fatalf("metrics %+v", b.Metrics)
	}
	if _, ok := parseBenchLine("BenchmarkBroken   notanumber ns/op"); ok {
		t.Fatal("parsed a malformed line")
	}
}

func TestBenchKeyStripsGOMAXPROCS(t *testing.T) {
	cases := map[[2]string]string{
		{"corona/internal/core", "BenchmarkFanout-8"}:  "corona/internal/core BenchmarkFanout",
		{"corona/internal/core", "BenchmarkFanout-16"}: "corona/internal/core BenchmarkFanout",
		{"", "BenchmarkFanout/sub-case-4"}:             "BenchmarkFanout/sub-case",
		{"p", "BenchmarkNoSuffix"}:                     "p BenchmarkNoSuffix",
		{"p", "Benchmark-name-notanum"}:                "p Benchmark-name-notanum",
	}
	for in, want := range cases {
		if got := benchKey(in[0], in[1]); got != want {
			t.Errorf("benchKey(%q, %q) = %q, want %q", in[0], in[1], got, want)
		}
	}
}

func writeReport(t *testing.T, path string, names ...string) {
	t.Helper()
	r := Report{}
	for _, n := range names {
		r.Benchmarks = append(r.Benchmarks, Benchmark{Name: n, Package: "p", Iterations: 1})
	}
	enc, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, enc, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestVanishedBenchmarks(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_x.json")

	next := Report{Benchmarks: []Benchmark{
		{Name: "BenchmarkA-8", Package: "p"},
		{Name: "BenchmarkB-8", Package: "p"},
	}}

	// No previous file: nothing vanishes.
	if gone := vanishedBenchmarks(path, next); gone != nil {
		t.Fatalf("no previous file, got %v", gone)
	}

	// Previous run recorded A, B, C at a different GOMAXPROCS: only C is
	// gone, and the differing -N suffix must not count as a vanishing.
	writeReport(t, path, "BenchmarkA-16", "BenchmarkB-16", "BenchmarkC-16")
	gone := vanishedBenchmarks(path, next)
	if len(gone) != 1 || gone[0] != "p BenchmarkC" {
		t.Fatalf("want [p BenchmarkC], got %v", gone)
	}

	// Superset run: nothing vanishes.
	writeReport(t, path, "BenchmarkA-16")
	if gone := vanishedBenchmarks(path, next); gone != nil {
		t.Fatalf("superset run, got %v", gone)
	}

	// Unparseable previous file guards nothing rather than blocking the
	// run.
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if gone := vanishedBenchmarks(path, next); gone != nil {
		t.Fatalf("corrupt previous file, got %v", gone)
	}
}

// Command bench2json converts `go test -bench` output on stdin into a
// machine-readable JSON file, passing the raw text through to stdout so it
// still reads like a benchmark run. The Makefile's bench target uses it to
// record wire-layer results in BENCH_wire.json:
//
//	go test -run xxx -bench Wire -benchmem ./... | go run ./cmd/bench2json -o BENCH_wire.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line: the benchmark name, its iteration
// count, and every reported metric (ns/op, B/op, allocs/op, MB/s, and any
// custom b.ReportMetric units) keyed by unit.
type Benchmark struct {
	Name       string             `json:"name"`
	Package    string             `json:"package,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is the file layout: run context plus all parsed benchmarks.
type Report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "", "output JSON file (stdout JSON suppressed when set)")
	allowVanish := flag.Bool("allow-vanish", false, "permit benchmarks recorded in the previous -o file to be absent from this run (intentional rename or removal)")
	flag.Parse()

	var report Report
	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // tee: keep the human-readable run visible
		switch {
		case strings.HasPrefix(line, "goos: "):
			report.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			report.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			report.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseBenchLine(line); ok {
				b.Package = pkg
				report.Benchmarks = append(report.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatalf("bench2json: reading stdin: %v", err)
	}

	enc, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		log.Fatalf("bench2json: %v", err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	// Regression guard: a benchmark that was recorded last run but is
	// absent now usually means a -bench filter stopped matching or the
	// benchmark was deleted by accident — fail instead of silently
	// shrinking the recorded set. Intentional renames pass -allow-vanish.
	if !*allowVanish {
		if gone := vanishedBenchmarks(*out, report); len(gone) > 0 {
			log.Fatalf("bench2json: %d benchmark(s) recorded in %s are missing from this run:\n  %s\n(intentional rename or removal? rerun with -allow-vanish)",
				len(gone), *out, strings.Join(gone, "\n  "))
		}
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		log.Fatalf("bench2json: %v", err)
	}
	fmt.Fprintf(os.Stderr, "bench2json: wrote %d benchmarks to %s\n", len(report.Benchmarks), *out)
}

// benchKey identifies a benchmark across runs: package plus name with
// the trailing -<GOMAXPROCS> suffix stripped, so recording on a machine
// with a different core count does not read as a disappearance.
func benchKey(pkg, name string) string {
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	if pkg == "" {
		return name
	}
	return pkg + " " + name
}

// vanishedBenchmarks compares the report about to be written against the
// previous report at path, returning the sorted keys present before but
// absent now. A missing or unparseable previous file guards nothing.
func vanishedBenchmarks(path string, next Report) []string {
	prev, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	var old Report
	if json.Unmarshal(prev, &old) != nil {
		return nil
	}
	have := make(map[string]bool, len(next.Benchmarks))
	for _, b := range next.Benchmarks {
		have[benchKey(b.Package, b.Name)] = true
	}
	gone := make(map[string]bool)
	for _, b := range old.Benchmarks {
		if k := benchKey(b.Package, b.Name); !have[k] {
			gone[k] = true
		}
	}
	if len(gone) == 0 {
		return nil
	}
	keys := make([]string, 0, len(gone))
	for k := range gone {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// parseBenchLine parses one result line:
//
//	BenchmarkX/sub-8   12345   678.9 ns/op   1024 B/op   3 allocs/op
//
// Fields after the iteration count come in "<value> <unit>" pairs.
func parseBenchLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, true
}

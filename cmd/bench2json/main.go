// Command bench2json converts `go test -bench` output on stdin into a
// machine-readable JSON file, passing the raw text through to stdout so it
// still reads like a benchmark run. The Makefile's bench target uses it to
// record wire-layer results in BENCH_wire.json:
//
//	go test -run xxx -bench Wire -benchmem ./... | go run ./cmd/bench2json -o BENCH_wire.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line: the benchmark name, its iteration
// count, and every reported metric (ns/op, B/op, allocs/op, MB/s, and any
// custom b.ReportMetric units) keyed by unit.
type Benchmark struct {
	Name       string             `json:"name"`
	Package    string             `json:"package,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is the file layout: run context plus all parsed benchmarks.
type Report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "", "output JSON file (stdout JSON suppressed when set)")
	flag.Parse()

	var report Report
	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // tee: keep the human-readable run visible
		switch {
		case strings.HasPrefix(line, "goos: "):
			report.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			report.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			report.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseBenchLine(line); ok {
				b.Package = pkg
				report.Benchmarks = append(report.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatalf("bench2json: reading stdin: %v", err)
	}

	enc, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		log.Fatalf("bench2json: %v", err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		log.Fatalf("bench2json: %v", err)
	}
	fmt.Fprintf(os.Stderr, "bench2json: wrote %d benchmarks to %s\n", len(report.Benchmarks), *out)
}

// parseBenchLine parses one result line:
//
//	BenchmarkX/sub-8   12345   678.9 ns/op   1024 B/op   3 allocs/op
//
// Fields after the iteration count come in "<value> <unit>" pairs.
func parseBenchLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, true
}

// Command corona-chaos runs the scripted torture suite: declarative
// fault scenarios (healing partitions, rack failures, churn, flash
// crowds, slow links, and their composition) against a simulated Corona
// cloud, followed by the machine-checked invariant sweep — exactly one
// owner per channel, no black-holed subscriber, monotonic versions,
// exactly-once delivery after convergence, consistent delegate rosters.
//
// Usage:
//
//	corona-chaos                              # every scenario, CI scale
//	corona-chaos -scenario churn -seed 7      # one scenario, custom seed
//	corona-chaos -scale long                  # 4096 nodes, 10^5 subs
//	corona-chaos -o BENCH_scale.json          # write the bench report
//
// The exit status is 0 only if every scenario converged with zero
// invariant violations.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"corona/internal/chaos"
)

func main() {
	scenario := flag.String("scenario", "all", "scenario name or 'all' (use -list to enumerate)")
	scaleName := flag.String("scale", "ci", "ci or long")
	seed := flag.Int64("seed", 0, "override the scale's scenario seed when nonzero")
	out := flag.String("o", "", "write a bench2json-shaped report (BENCH_scale.json) to this path")
	list := flag.Bool("list", false, "list scenarios and exit")
	flag.Parse()

	if *list {
		for _, sc := range chaos.Scenarios() {
			fmt.Printf("%-16s %s\n", sc.Name, sc.Description)
		}
		return
	}

	var cfg chaos.Config
	switch *scaleName {
	case "ci":
		cfg = chaos.CIScale()
	case "long":
		cfg = chaos.LongScale()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q (want ci or long)\n", *scaleName)
		os.Exit(2)
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}

	var selected []chaos.Scenario
	if *scenario == "all" {
		selected = chaos.Scenarios()
	} else {
		sc, ok := chaos.ScenarioByName(*scenario)
		if !ok {
			var names []string
			for _, s := range chaos.Scenarios() {
				names = append(names, s.Name)
			}
			fmt.Fprintf(os.Stderr, "unknown scenario %q (want one of %s, or all)\n",
				*scenario, strings.Join(names, ", "))
			os.Exit(2)
		}
		selected = []chaos.Scenario{sc}
	}

	failed := false
	var results []chaos.Result
	for _, sc := range selected {
		fmt.Printf("=== %s (nodes=%d channels=%d subscriptions=%d seed=%d) ===\n",
			sc.Name, cfg.Nodes, cfg.Channels, cfg.Subscriptions, cfg.Seed)
		res := chaos.Execute(sc, cfg)
		results = append(results, res)
		fmt.Printf("converged=%v in %v, %d deliveries (%d dup), %d lost channels, "+
			"peak owner %d notifies, wall %v\n",
			res.Converged, res.ConvergeTime, res.Deliveries, res.Duplicates,
			res.LostChannels, res.PeakOwnerNotifies, res.WallTime.Round(res.WallTime/100+1))
		if res.DeliveryLatencyP50 > 0 {
			fmt.Printf("delivery latency (detection to client, virtual time): p50=%v p99=%v\n",
				res.DeliveryLatencyP50, res.DeliveryLatencyP99)
		}
		for _, v := range res.Violations {
			fmt.Printf("  violation %v\n", v)
		}
		if res.Failed() || !res.Converged {
			failed = true
		}
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "create %s: %v\n", *out, err)
			os.Exit(1)
		}
		if err := chaos.WriteReport(f, *scaleName, cfg.Seed, results); err != nil {
			fmt.Fprintf(os.Stderr, "write %s: %v\n", *out, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "close %s: %v\n", *out, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d scenarios)\n", *out, len(results))
	}
	if failed {
		os.Exit(1)
	}
}

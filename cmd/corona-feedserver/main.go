// Command corona-feedserver serves synthetic RSS feeds over HTTP — the
// legacy content servers of a live Corona deployment. Feeds update on
// periodic schedules, support conditional GET via ETag, and optionally
// enforce the blunt per-IP rate limit the paper criticizes (§1).
//
// Usage:
//
//	corona-feedserver -bind :8080 -feeds 50 -update 5m -ratelimit 0
//
// Feeds are served at /feed/<n>.xml.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"corona/internal/feed"
	"corona/internal/webserver"
)

func main() {
	bind := flag.String("bind", "127.0.0.1:8080", "listen address")
	feeds := flag.Int("feeds", 20, "number of feeds to host")
	update := flag.Duration("update", 5*time.Minute, "update interval of every feed")
	rateLimit := flag.Int("ratelimit", 0, "max requests per client IP per minute (0 = unlimited)")
	seed := flag.Int64("seed", 1, "content seed")
	flag.Parse()

	origin := webserver.NewOrigin()
	now := time.Now()
	for i := 0; i < *feeds; i++ {
		url := fmt.Sprintf("/feed/%d.xml", i)
		origin.Host(webserver.ChannelConfig{
			URL:       url,
			Process:   webserver.PeriodicProcess{Origin: now, Interval: *update},
			Generator: feed.NewGenerator(url, *seed+int64(i)),
		})
	}
	h := webserver.NewHTTPOrigin(origin, time.Now)
	if *rateLimit > 0 {
		h.SetRateLimit(*rateLimit)
	}
	log.Printf("corona-feedserver: %d feeds at http://%s/feed/<n>.xml, updating every %v", *feeds, *bind, *update)
	log.Fatal(http.ListenAndServe(*bind, h))
}

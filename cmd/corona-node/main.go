// Command corona-node runs one live Corona overlay node: it joins (or
// bootstraps) a TCP ring, polls real HTTP feeds, and serves clients on
// two ports — the versioned binary client protocol (-client; what the
// corona/client SDK and corona-client speak) and the legacy line-oriented
// IM protocol (-im).
//
// Usage:
//
//	corona-node -bind 127.0.0.1:9001 -client 127.0.0.1:9201 -im 127.0.0.1:9101
//	corona-node -bind 127.0.0.1:9002 -client 127.0.0.1:9202 -im 127.0.0.1:9102 -seed-node 127.0.0.1:9001
//	corona-node -bind 127.0.0.1:9001 -client 127.0.0.1:9201 -data /var/lib/corona
//
// -data makes channel state durable: subscriptions, ownership, polling
// levels and version progress are journaled to a write-ahead log (with
// snapshot compaction) under the given directory, and a node restarted
// from the same directory and address recovers them, rejoins the ring,
// and keeps delivering updates without clients re-subscribing. SIGINT or
// SIGTERM triggers a graceful shutdown that flushes the log; a hard kill
// loses at most the records inside the group-commit window.
//
// The binary client protocol is specified in internal/clientproto; use
// the corona/client package to speak it.
//
// Legacy IM protocol (one command per line):
//
//	LOGIN <handle>          register/login; notifications follow as MSG lines
//	SUBSCRIBE <url>         subscribe to a channel (acked with OK/ERR)
//	UNSUBSCRIBE <url>       unsubscribe (acked with OK/ERR)
//	QUIT                    disconnect (handle goes offline; messages buffer)
//
// Server lines:
//
//	OK <info> | ERR <reason> | MSG <from> <quoted-body>
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"corona"
	"corona/internal/im"
)

func main() {
	bind := flag.String("bind", "127.0.0.1:9001", "overlay TCP listen address")
	clientBind := flag.String("client", "127.0.0.1:9201", "binary client-protocol listen address (empty = disabled)")
	imBind := flag.String("im", "127.0.0.1:9101", "legacy IM line-protocol listen address (empty = disabled)")
	seedNode := flag.String("seed-node", "", "existing member to join through (empty = bootstrap)")
	scheme := flag.String("scheme", "lite", "lite, fast, fair, fair-sqrt, fair-log")
	fastTarget := flag.Duration("fast-target", 30*time.Second, "Corona-Fast detection target")
	poll := flag.Duration("poll", 30*time.Minute, "polling interval τ")
	maintenance := flag.Duration("maintenance", 0, "maintenance interval (default = τ)")
	nodes := flag.Int("n", 0, "node count hint for the optimizer (0 = estimate)")
	dataDir := flag.String("data", "", "data directory for durable channel state (empty = in-memory only)")
	delegateThreshold := flag.Int("delegate-threshold", 0, "subscriber count at which an owner shards a channel's fan-out across delegates (0 = disabled)")
	adminBind := flag.String("admin", "", "HTTP admin-plane listen address serving /metrics, /healthz, /readyz, /channels, /debug/pprof (empty = disabled)")
	webBind := flag.String("web", "", "web edge gateway listen address serving /ws (WebSocket) and /sse (Server-Sent Events) with replay-ring resume (empty = disabled)")
	webReplay := flag.Int("web-replay", 0, "web gateway per-channel replay ring capacity (0 = default)")
	webDisconnectSlow := flag.Bool("web-disconnect-slow", false, "disconnect slow web clients instead of dropping their oldest queued notification")
	flag.Parse()

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))

	cfg := corona.LiveConfig{
		Bind:                *bind,
		Scheme:              parseScheme(*scheme),
		FastTarget:          *fastTarget,
		PollInterval:        *poll,
		MaintenanceInterval: *maintenance,
		NodeCountHint:       *nodes,
		DataDir:             *dataDir,
		ClientBind:          *clientBind,
		DelegateThreshold:   *delegateThreshold,
		AdminBind:           *adminBind,
		WebBind:             *webBind,
		WebReplayCap:        *webReplay,
		WebDisconnectSlow:   *webDisconnectSlow,
	}
	if *seedNode != "" {
		cfg.Seeds = []string{*seedNode}
	}
	joinMode := "bootstrap"
	if len(cfg.Seeds) > 0 {
		joinMode = "join"
	}
	logger.Info("starting",
		"bind", *bind, "client", *clientBind, "im", *imBind, "admin", *adminBind,
		"web", *webBind, "scheme", fmt.Sprint(cfg.Scheme), "poll", cfg.PollInterval,
		"data_dir", *dataDir, "mode", joinMode, "seeds", cfg.Seeds)
	node, err := corona.StartLiveNode(cfg)
	if err != nil {
		logger.Error("start failed", "err", err)
		os.Exit(1)
	}
	logger.Info("started",
		"overlay", node.Addr(), "client", node.ClientAddr(), "admin", node.AdminAddr(),
		"web", node.WebAddr(), "im", *imBind, "scheme", fmt.Sprint(cfg.Scheme), "mode", joinMode)

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)

	if *imBind == "" {
		// Client-protocol only: block until a shutdown signal.
		sig := <-sigs
		shutdown(logger, node, sig)
		return
	}

	ln, err := net.Listen("tcp", *imBind)
	if err != nil {
		node.Close()
		logger.Error("IM listener failed", "bind", *imBind, "err", err)
		os.Exit(1)
	}

	// A blocking Accept loop never reaches a defer, so shutdown runs off
	// the signal handler: close the client-protocol listener (draining
	// its per-connection writer goroutines, so no client dies mid-frame)
	// alongside the IM listener (unblocking Accept), then stop the node,
	// which flushes the durable store only after client traffic is done.
	var shuttingDown atomic.Bool
	var sig os.Signal
	go func() {
		sig = <-sigs
		shuttingDown.Store(true)
		node.CloseClients()
		ln.Close()
	}()

	for {
		conn, err := ln.Accept()
		if err != nil {
			if shuttingDown.Load() {
				break
			}
			logger.Error("accept failed", "err", err)
			os.Exit(1)
		}
		go serveIM(conn, node)
	}
	shutdown(logger, node, sig)
}

// shutdown is the single graceful-exit path: stop the node (flushing
// the durable store) and report.
func shutdown(logger *slog.Logger, node *corona.LiveNode, sig os.Signal) {
	logger.Info("shutting down", "reason", fmt.Sprint(sig))
	if err := node.Close(); err != nil {
		logger.Error("shutdown failed", "err", err)
		os.Exit(1)
	}
	logger.Info("stopped")
}

func parseScheme(s string) corona.Scheme {
	switch strings.ToLower(s) {
	case "fast":
		return corona.Fast
	case "fair":
		return corona.Fair
	case "fair-sqrt":
		return corona.FairSqrt
	case "fair-log":
		return corona.FairLog
	default:
		return corona.Lite
	}
}

// subscriber is the node surface serveIM drives (LiveNode implements it;
// tests substitute fakes).
type subscriber interface {
	Subscribe(client, url string) error
	Unsubscribe(client, url string) error
}

// imService is the IM surface serveIM drives.
type imService interface {
	Register(handle string)
	Login(handle string, deliver im.DeliverFunc) error
	Logout(handle string)
}

// serveIM bridges one TCP client to the node's IM service, acking every
// command: a SUBSCRIBE or UNSUBSCRIBE that cannot be issued replies ERR
// instead of silently vanishing into a fire-and-forget IM send.
func serveIM(conn net.Conn, node *corona.LiveNode) {
	serveIMOn(conn, node, node.IM())
}

func serveIMOn(conn net.Conn, node subscriber, service imService) {
	defer conn.Close()
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	out := bufio.NewWriter(conn)
	// reply is called from this goroutine (command acks) and from IM
	// delivery callbacks on gateway pacing timers (MSG lines); the mutex
	// keeps the two from interleaving partial lines in the writer.
	var outMu sync.Mutex
	reply := func(format string, args ...any) {
		outMu.Lock()
		defer outMu.Unlock()
		fmt.Fprintf(out, format+"\n", args...)
		out.Flush()
	}
	var handle string
	defer func() {
		if handle != "" {
			service.Logout(handle)
		}
	}()
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		cmd := strings.ToUpper(fields[0])
		switch {
		case cmd == "LOGIN" && len(fields) == 2:
			if handle != "" {
				reply("ERR already logged in as %s", handle)
				continue
			}
			h := fields[1]
			service.Register(h)
			err := service.Login(h, func(m im.Message) {
				// Quote the body so multi-line diffs survive the line
				// protocol.
				reply("MSG %s %s", m.From, strconv.Quote(m.Body))
			})
			if err != nil {
				reply("ERR %v", err)
				continue
			}
			handle = h
			reply("OK logged in as %s", h)
		case cmd == "SUBSCRIBE" && len(fields) == 2 && handle != "":
			if err := node.Subscribe(handle, fields[1]); err != nil {
				reply("ERR %v", err)
				continue
			}
			reply("OK subscribed %s", fields[1])
		case cmd == "UNSUBSCRIBE" && len(fields) == 2 && handle != "":
			if err := node.Unsubscribe(handle, fields[1]); err != nil {
				reply("ERR %v", err)
				continue
			}
			reply("OK unsubscribed %s", fields[1])
		case cmd == "QUIT":
			reply("OK bye")
			return
		default:
			reply("ERR expected LOGIN <handle> | SUBSCRIBE <url> | UNSUBSCRIBE <url> | QUIT")
		}
	}
}

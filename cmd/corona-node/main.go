// Command corona-node runs one live Corona overlay node: it joins (or
// bootstraps) a TCP ring, polls real HTTP feeds, and serves clients over a
// line-oriented IM protocol on a separate port.
//
// Usage:
//
//	corona-node -bind 127.0.0.1:9001 -im 127.0.0.1:9101                  # bootstrap
//	corona-node -bind 127.0.0.1:9002 -im 127.0.0.1:9102 -seed-node 127.0.0.1:9001
//	corona-node -bind 127.0.0.1:9001 -im 127.0.0.1:9101 -data /var/lib/corona
//
// -data makes channel state durable: subscriptions, ownership, polling
// levels and version progress are journaled to a write-ahead log (with
// snapshot compaction) under the given directory, and a node restarted
// from the same directory and address recovers them, rejoins the ring,
// and keeps delivering updates without clients re-subscribing. SIGINT or
// SIGTERM triggers a graceful shutdown that flushes the log; a hard kill
// loses at most the records inside the group-commit window.
//
// IM protocol (one command per line):
//
//	LOGIN <handle>          register/login; notifications follow as MSG lines
//	SUBSCRIBE <url>         subscribe to a channel
//	UNSUBSCRIBE <url>       unsubscribe
//	QUIT                    disconnect (handle goes offline; messages buffer)
//
// Server lines:
//
//	OK <info> | ERR <reason> | MSG <from> <quoted-body>
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"corona"
	"corona/internal/im"
)

func main() {
	bind := flag.String("bind", "127.0.0.1:9001", "overlay TCP listen address")
	imBind := flag.String("im", "127.0.0.1:9101", "IM line-protocol listen address")
	seedNode := flag.String("seed-node", "", "existing member to join through (empty = bootstrap)")
	scheme := flag.String("scheme", "lite", "lite, fast, fair, fair-sqrt, fair-log")
	fastTarget := flag.Duration("fast-target", 30*time.Second, "Corona-Fast detection target")
	poll := flag.Duration("poll", 30*time.Minute, "polling interval τ")
	maintenance := flag.Duration("maintenance", 0, "maintenance interval (default = τ)")
	nodes := flag.Int("n", 0, "node count hint for the optimizer (0 = estimate)")
	dataDir := flag.String("data", "", "data directory for durable channel state (empty = in-memory only)")
	flag.Parse()

	cfg := corona.LiveConfig{
		Bind:                *bind,
		Scheme:              parseScheme(*scheme),
		FastTarget:          *fastTarget,
		PollInterval:        *poll,
		MaintenanceInterval: *maintenance,
		NodeCountHint:       *nodes,
		DataDir:             *dataDir,
	}
	if *seedNode != "" {
		cfg.Seeds = []string{*seedNode}
	}
	node, err := corona.StartLiveNode(cfg)
	if err != nil {
		log.Fatalf("starting node: %v", err)
	}
	log.Printf("corona-node: overlay at %s, IM at %s, scheme %s", node.Addr(), *imBind, cfg.Scheme)

	ln, err := net.Listen("tcp", *imBind)
	if err != nil {
		node.Close()
		log.Fatalf("IM listener: %v", err)
	}

	// A blocking Accept loop never reaches a defer, so shutdown runs off
	// the signal handler: close the IM listener (unblocking Accept), then
	// stop the node, which flushes the durable store.
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	var shuttingDown atomic.Bool
	go func() {
		sig := <-sigs
		log.Printf("corona-node: %v, shutting down", sig)
		shuttingDown.Store(true)
		ln.Close()
	}()

	for {
		conn, err := ln.Accept()
		if err != nil {
			if shuttingDown.Load() {
				break
			}
			log.Fatalf("accept: %v", err)
		}
		go serveIM(conn, node)
	}
	if err := node.Close(); err != nil {
		log.Fatalf("shutdown: %v", err)
	}
}

func parseScheme(s string) corona.Scheme {
	switch strings.ToLower(s) {
	case "fast":
		return corona.Fast
	case "fair":
		return corona.Fair
	case "fair-sqrt":
		return corona.FairSqrt
	case "fair-log":
		return corona.FairLog
	default:
		return corona.Lite
	}
}

// serveIM bridges one TCP client to the node's IM service.
func serveIM(conn net.Conn, node *corona.LiveNode) {
	defer conn.Close()
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	out := bufio.NewWriter(conn)
	reply := func(format string, args ...any) {
		fmt.Fprintf(out, format+"\n", args...)
		out.Flush()
	}
	var handle string
	service := node.IM()
	gateway := node.Gateway()
	defer func() {
		if handle != "" {
			service.Logout(handle)
		}
	}()
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		cmd := strings.ToUpper(fields[0])
		switch {
		case cmd == "LOGIN" && len(fields) == 2:
			if handle != "" {
				reply("ERR already logged in as %s", handle)
				continue
			}
			h := fields[1]
			service.Register(h)
			err := service.Login(h, func(m im.Message) {
				// Quote the body so multi-line diffs survive the line
				// protocol.
				reply("MSG %s %s", m.From, strconv.Quote(m.Body))
			})
			if err != nil {
				reply("ERR %v", err)
				continue
			}
			handle = h
			reply("OK logged in as %s", h)
		case cmd == "SUBSCRIBE" && len(fields) == 2 && handle != "":
			service.Send(handle, gateway.Handle(), "subscribe "+fields[1])
		case cmd == "UNSUBSCRIBE" && len(fields) == 2 && handle != "":
			service.Send(handle, gateway.Handle(), "unsubscribe "+fields[1])
		case cmd == "QUIT":
			reply("OK bye")
			return
		default:
			reply("ERR expected LOGIN <handle> | SUBSCRIBE <url> | UNSUBSCRIBE <url> | QUIT")
		}
	}
}

package main

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"corona/internal/clock"
	"corona/internal/im"
)

// fakeSub records subscription calls; failing ones must surface as ERR
// lines instead of vanishing into fire-and-forget IM sends.
type fakeSub struct {
	subs, unsubs []string
	fail         bool
}

func (f *fakeSub) Subscribe(client, url string) error {
	if f.fail {
		return fmt.Errorf("overlay unreachable")
	}
	f.subs = append(f.subs, client+" "+url)
	return nil
}

func (f *fakeSub) Unsubscribe(client, url string) error {
	f.unsubs = append(f.unsubs, client+" "+url)
	return nil
}

func runIMSession(t *testing.T, node subscriber, service imService, lines []string) []string {
	t.Helper()
	clientEnd, serverEnd := net.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		serveIMOn(serverEnd, node, service)
	}()
	var replies []string
	sc := bufio.NewScanner(clientEnd)
	clientEnd.SetDeadline(time.Now().Add(5 * time.Second))
	for _, l := range lines {
		if _, err := fmt.Fprintln(clientEnd, l); err != nil {
			t.Fatal(err)
		}
		if !sc.Scan() {
			t.Fatalf("no reply to %q: %v", l, sc.Err())
		}
		replies = append(replies, sc.Text())
	}
	clientEnd.Close()
	<-done
	return replies
}

func TestServeIMAcksSubscribeCommands(t *testing.T) {
	node := &fakeSub{}
	service := im.NewService(clock.Real{})
	replies := runIMSession(t, node, service, []string{
		"LOGIN alice",
		"SUBSCRIBE http://x/f.xml",
		"UNSUBSCRIBE http://x/f.xml",
		"QUIT",
	})
	want := []string{"OK logged in as alice", "OK subscribed http://x/f.xml", "OK unsubscribed http://x/f.xml", "OK bye"}
	for i, w := range want {
		if replies[i] != w {
			t.Fatalf("reply[%d] = %q, want %q", i, replies[i], w)
		}
	}
	if len(node.subs) != 1 || node.subs[0] != "alice http://x/f.xml" {
		t.Fatalf("node subs = %v", node.subs)
	}
	if len(node.unsubs) != 1 {
		t.Fatalf("node unsubs = %v", node.unsubs)
	}
}

func TestServeIMErrsFailedSubscribe(t *testing.T) {
	node := &fakeSub{fail: true}
	service := im.NewService(clock.Real{})
	replies := runIMSession(t, node, service, []string{
		"LOGIN bob",
		"SUBSCRIBE http://x/f.xml",
	})
	if !strings.HasPrefix(replies[1], "ERR") || !strings.Contains(replies[1], "overlay unreachable") {
		t.Fatalf("failed subscribe reply = %q, want ERR with the node error", replies[1])
	}
}

func TestServeIMRejectsCommandsBeforeLogin(t *testing.T) {
	node := &fakeSub{}
	service := im.NewService(clock.Real{})
	replies := runIMSession(t, node, service, []string{"SUBSCRIBE http://x/f.xml"})
	if !strings.HasPrefix(replies[0], "ERR") {
		t.Fatalf("pre-login subscribe reply = %q, want ERR", replies[0])
	}
	if len(node.subs) != 0 {
		t.Fatalf("pre-login subscribe reached the node: %v", node.subs)
	}
}

// Command corona-sim regenerates the paper's evaluation artifacts
// (Figures 3-10 and Table 2) from the discrete-event simulator.
//
// Usage:
//
//	corona-sim -experiment table2            # bench scale
//	corona-sim -experiment fig3 -scale paper # full paper scale
//	corona-sim -experiment all
//
// Experiments: fig3, fig4 (both run as fig34), fig5, fig6 (fig56),
// fig7, fig8 (fig78), fig9, fig10 (fig910), table2, all.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"corona/internal/experiments"
)

func main() {
	experiment := flag.String("experiment", "table2", "which artifact to regenerate: fig34, fig56, fig78, fig910, table2, all")
	scaleName := flag.String("scale", "bench", "bench, paper, or tiny")
	seed := flag.Int64("seed", 1, "simulation seed")
	flag.Parse()

	simScale, depScale := pickScales(*scaleName)
	simScale.Seed = *seed
	depScale.Seed = *seed

	start := time.Now()
	ran := false
	want := normalize(*experiment)
	run := func(name string, fn func() string) {
		if want != "all" && want != name {
			return
		}
		ran = true
		fmt.Printf("=== %s (nodes=%d channels=%d subscriptions=%d) ===\n",
			name, simScale.Nodes, simScale.Channels, simScale.Subscriptions)
		fmt.Println(fn())
	}

	run("fig34", func() string { return experiments.RunFigure34(simScale).Render() })
	run("fig56", func() string { return experiments.RunFigure56(simScale).Render() })
	run("fig78", func() string { return experiments.RunFigure78(simScale).Render() })
	run("table2", func() string { return experiments.RunTable2(simScale).Render() })
	if want == "all" || want == "fig910" {
		ran = true
		fmt.Printf("=== fig910 (deployment: nodes=%d channels=%d subscriptions=%d) ===\n",
			depScale.Nodes, depScale.Channels, depScale.Subscriptions)
		fmt.Println(experiments.RunFigure910(depScale).Render())
	}

	if !ran {
		fmt.Fprintf(os.Stderr, "unknown experiment %q (want fig34, fig56, fig78, fig910, table2, all)\n", *experiment)
		os.Exit(2)
	}
	fmt.Printf("completed in %v\n", time.Since(start).Round(time.Millisecond))
}

// normalize maps individual figure names onto their combined runners.
func normalize(name string) string {
	switch strings.ToLower(name) {
	case "fig3", "fig4", "fig34":
		return "fig34"
	case "fig5", "fig6", "fig56":
		return "fig56"
	case "fig7", "fig8", "fig78":
		return "fig78"
	case "fig9", "fig10", "fig910":
		return "fig910"
	case "table2":
		return "table2"
	case "all":
		return "all"
	default:
		return name
	}
}

func pickScales(name string) (experiments.Scale, experiments.Scale) {
	switch name {
	case "paper":
		return experiments.PaperSimulation(), experiments.PaperDeployment()
	case "tiny":
		return experiments.TinySimulation(), experiments.BenchDeployment()
	default:
		return experiments.BenchSimulation(), experiments.BenchDeployment()
	}
}

// Command corona-lint runs Corona's house analyzers — the statically
// checkable slice of the invariants the chaos harness checks dynamically —
// over the repository and fails on any violation:
//
//	go run ./cmd/corona-lint ./...
//
// Each finding prints as file:line:col: analyzer: message. Deliberate
// exceptions are annotated in source with a checked directive:
//
//	//lint:allow <analyzer> <reason>
//
// on the flagged line or the line directly above. See internal/analysis
// for the analyzer catalogue and the historical bugs motivating each.
package main

import (
	"flag"
	"fmt"
	"os"

	"corona/internal/analysis"
	"corona/internal/analysis/load"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: corona-lint [-list] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := load.Packages(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "corona-lint: %v\n", err)
		os.Exit(2)
	}
	findings, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "corona-lint: %v\n", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "corona-lint: %d finding(s) in %d package(s)\n", len(findings), len(pkgs))
		os.Exit(1)
	}
}

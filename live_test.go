package corona

import (
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"corona/internal/feed"
	"corona/internal/im"
	"corona/internal/webserver"
)

// startTestOrigin serves one generator-backed feed over real HTTP.
func startTestOrigin(t *testing.T, updateEvery time.Duration) (feedURL string, stop func()) {
	t.Helper()
	origin := webserver.NewOrigin()
	const path = "/feed/live.xml"
	origin.Host(webserver.ChannelConfig{
		URL:       path,
		Process:   webserver.PeriodicProcess{Origin: time.Now(), Interval: updateEvery},
		Generator: feed.NewGenerator(path, 11),
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: webserver.NewHTTPOrigin(origin, time.Now)}
	go srv.Serve(ln)
	return "http://" + ln.Addr().String() + path, func() { srv.Close() }
}

func TestLiveNodeEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time TCP test")
	}
	feedURL, stopOrigin := startTestOrigin(t, 500*time.Millisecond)
	defer stopOrigin()

	// A three-node ring over TCP loopback.
	var nodes []*LiveNode
	var seeds []string
	for i := 0; i < 3; i++ {
		n, err := StartLiveNode(LiveConfig{
			Bind:          "127.0.0.1:0",
			Seeds:         seeds,
			PollInterval:  300 * time.Millisecond,
			NodeCountHint: 3,
		})
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
		defer n.Close()
		nodes = append(nodes, n)
		seeds = []string{n.Addr()}
		time.Sleep(100 * time.Millisecond)
	}

	// Subscribe through node 0's IM front end.
	service := nodes[0].IM()
	service.Register("alice")
	got := make(chan im.Message, 32)
	if err := service.Login("alice", func(m im.Message) { got <- m }); err != nil {
		t.Fatal(err)
	}
	service.Send("alice", nodes[0].Gateway().Handle(), "subscribe "+feedURL)

	deadline := time.After(20 * time.Second)
	sawAck, sawUpdate := false, false
	for !sawAck || !sawUpdate {
		select {
		case m := <-got:
			switch {
			case strings.HasPrefix(m.Body, "subscribed"):
				sawAck = true
			case strings.HasPrefix(m.Body, "UPDATE"):
				sawUpdate = true
				if !strings.Contains(m.Body, "CORONA-DIFF") {
					t.Fatalf("update without encoded diff: %.120s", m.Body)
				}
			case strings.HasPrefix(m.Body, "error"):
				t.Fatalf("gateway error: %s", m.Body)
			}
		case <-deadline:
			t.Fatalf("timed out (ack=%v update=%v)", sawAck, sawUpdate)
		}
	}

	// At least one node polled the origin over real HTTP.
	var polls uint64
	for _, n := range nodes {
		polls += n.Stats().PollsIssued
	}
	if polls == 0 {
		t.Fatal("no HTTP polls issued")
	}
}

func TestLiveNodeValidation(t *testing.T) {
	if _, err := StartLiveNode(LiveConfig{}); err == nil {
		t.Fatal("empty bind accepted")
	}
	if _, err := StartLiveNode(LiveConfig{Bind: "127.0.0.1:0", Seeds: []string{"127.0.0.1:1"}}); err == nil {
		t.Fatal("unreachable seed accepted")
	}
}

func TestSimulationDeterminism(t *testing.T) {
	// Two simulations with identical options must produce identical
	// notification sequences and identical stats.
	run := func() ([]Notification, Stats) {
		sim, err := NewSimulation(Options{Nodes: 16, PollInterval: 5 * time.Minute, Seed: 99})
		if err != nil {
			t.Fatal(err)
		}
		defer sim.Close()
		const url = "http://det.example.com/f.xml"
		sim.HostFeed(url, 12*time.Minute)
		var got []Notification
		sim.Subscribe("alice", url, func(n Notification) { got = append(got, n) })
		sim.RunFor(4 * time.Hour)
		return got, sim.Stats()
	}
	a, sa := run()
	b, sb := run()
	if len(a) != len(b) {
		t.Fatalf("notification counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Version != b[i].Version || !a[i].At.Equal(b[i].At) || a[i].Diff != b[i].Diff {
			t.Fatalf("notification %d differs between identical runs", i)
		}
	}
	if sa != sb {
		t.Fatalf("stats differ: %+v vs %+v", sa, sb)
	}
}

package corona

import (
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"corona/internal/feed"
	"corona/internal/im"
	"corona/internal/webserver"
)

// startTestOrigin serves one generator-backed feed over real HTTP.
func startTestOrigin(t *testing.T, updateEvery time.Duration) (feedURL string, stop func()) {
	t.Helper()
	origin := webserver.NewOrigin()
	const path = "/feed/live.xml"
	origin.Host(webserver.ChannelConfig{
		URL:       path,
		Process:   webserver.PeriodicProcess{Origin: time.Now(), Interval: updateEvery},
		Generator: feed.NewGenerator(path, 11),
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: webserver.NewHTTPOrigin(origin, time.Now)}
	go srv.Serve(ln)
	return "http://" + ln.Addr().String() + path, func() { srv.Close() }
}

func TestLiveNodeEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time TCP test")
	}
	feedURL, stopOrigin := startTestOrigin(t, 500*time.Millisecond)
	defer stopOrigin()

	// A three-node ring over TCP loopback.
	var nodes []*LiveNode
	var seeds []string
	for i := 0; i < 3; i++ {
		n, err := StartLiveNode(LiveConfig{
			Bind:          "127.0.0.1:0",
			Seeds:         seeds,
			PollInterval:  300 * time.Millisecond,
			NodeCountHint: 3,
		})
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
		defer n.Close()
		nodes = append(nodes, n)
		seeds = []string{n.Addr()}
		time.Sleep(100 * time.Millisecond)
	}

	// Subscribe through node 0's IM front end.
	service := nodes[0].IM()
	service.Register("alice")
	got := make(chan im.Message, 32)
	if err := service.Login("alice", func(m im.Message) { got <- m }); err != nil {
		t.Fatal(err)
	}
	service.Send("alice", nodes[0].Gateway().Handle(), "subscribe "+feedURL)

	deadline := time.After(20 * time.Second)
	sawAck, sawUpdate := false, false
	for !sawAck || !sawUpdate {
		select {
		case m := <-got:
			switch {
			case strings.HasPrefix(m.Body, "subscribed"):
				sawAck = true
			case strings.HasPrefix(m.Body, "UPDATE"):
				sawUpdate = true
				if !strings.Contains(m.Body, "CORONA-DIFF") {
					t.Fatalf("update without encoded diff: %.120s", m.Body)
				}
			case strings.HasPrefix(m.Body, "error"):
				t.Fatalf("gateway error: %s", m.Body)
			}
		case <-deadline:
			t.Fatalf("timed out (ack=%v update=%v)", sawAck, sawUpdate)
		}
	}

	// At least one node polled the origin over real HTTP.
	var polls uint64
	for _, n := range nodes {
		polls += n.Stats().PollsIssued
	}
	if polls == 0 {
		t.Fatal("no HTTP polls issued")
	}
}

// reservePorts grabs n distinct loopback ports and releases them, so a
// test can restart a node on the same address (the node identifier is
// derived from the advertised address, so a restarted node must rebind
// its old port to keep its ring position).
func reservePorts(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	listeners := make([]net.Listener, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range listeners {
		ln.Close()
	}
	return addrs
}

// loginAndWaitUpdate logs handle in on node's IM service and waits for
// one UPDATE notification, returning false on deadline.
func loginAndWaitUpdate(t *testing.T, node *LiveNode, handle string, timeout time.Duration) bool {
	t.Helper()
	got := make(chan im.Message, 64)
	node.IM().Register(handle)
	if err := node.IM().Login(handle, func(m im.Message) { got <- m }); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(timeout)
	for {
		select {
		case m := <-got:
			if strings.HasPrefix(m.Body, "UPDATE") {
				return true
			}
		case <-deadline:
			return false
		}
	}
}

// TestLiveNodeRestartRecovery is the durability acceptance scenario: a
// live node holding subscriptions is hard-killed (no flush beyond what
// the group-commit window already made durable), restarted from its
// DataDir on the same address, rejoins the ring, and the durable
// subscription delivers the next update with no client re-subscription.
func TestLiveNodeRestartRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time TCP test")
	}
	feedURL, stopOrigin := startTestOrigin(t, 500*time.Millisecond)
	defer stopOrigin()

	addrs := reservePorts(t, 3)
	dataDirs := []string{t.TempDir(), t.TempDir(), t.TempDir()}
	start := func(i int, seeds []string) *LiveNode {
		n, err := StartLiveNode(LiveConfig{
			Bind:          addrs[i],
			Seeds:         seeds,
			PollInterval:  300 * time.Millisecond,
			NodeCountHint: 3,
			DataDir:       dataDirs[i],
		})
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
		return n
	}
	nodes := make([]*LiveNode, 3)
	for i := range nodes {
		var seeds []string
		if i > 0 {
			seeds = []string{nodes[0].Addr()}
		}
		nodes[i] = start(i, seeds)
		time.Sleep(100 * time.Millisecond)
	}
	defer func() {
		for _, n := range nodes {
			if n != nil {
				n.Close()
			}
		}
	}()

	// Subscribe alice through node 0 and wait for the flow to be live.
	service := nodes[0].IM()
	service.Register("alice")
	got := make(chan im.Message, 64)
	if err := service.Login("alice", func(m im.Message) { got <- m }); err != nil {
		t.Fatal(err)
	}
	service.Send("alice", nodes[0].Gateway().Handle(), "subscribe "+feedURL)
	deadline := time.After(20 * time.Second)
	for sawUpdate := false; !sawUpdate; {
		select {
		case m := <-got:
			if strings.HasPrefix(m.Body, "UPDATE") {
				sawUpdate = true
			}
			if strings.HasPrefix(m.Body, "error") {
				t.Fatalf("gateway error: %s", m.Body)
			}
		case <-deadline:
			t.Fatal("subscription never delivered before the kill")
		}
	}

	// Find the channel's owner and give the group-commit window (2ms
	// default, against a far older subscription) no benefit of the doubt.
	ownerIdx := -1
	for i, n := range nodes {
		if info, ok := n.Channel(feedURL); ok && info.Owner {
			ownerIdx = i
			break
		}
	}
	if ownerIdx < 0 {
		t.Fatal("no node owns the channel")
	}
	time.Sleep(100 * time.Millisecond)

	// Hard-kill the owner: transport dies, store is abandoned unflushed.
	nodes[ownerIdx].Kill()

	// Wait for an interim owner: a surviving replica detects the fault
	// (sends to the dead node fail) and promotes itself. This is the
	// dual-owner setup the owner-epoch handshake must resolve.
	interimIdx := -1
	interimDeadline := time.Now().Add(20 * time.Second)
	for interimIdx < 0 && time.Now().Before(interimDeadline) {
		for i, n := range nodes {
			if i == ownerIdx {
				continue
			}
			if info, ok := n.Channel(feedURL); ok && info.Owner {
				interimIdx = i
				break
			}
		}
		time.Sleep(25 * time.Millisecond)
	}
	if interimIdx < 0 {
		t.Fatal("no interim owner promoted after the kill")
	}

	// Restart the old owner from its data directory on the same address,
	// joining through a surviving node — while the interim owner still
	// flies its isOwner flag.
	seedIdx := (ownerIdx + 1) % 3
	restarted := start(ownerIdx, []string{nodes[seedIdx].Addr()})
	nodes[ownerIdx] = restarted

	info, ok := restarted.Channel(feedURL)
	if !ok {
		t.Fatal("restarted node recovered no channel state")
	}
	if !info.Owner || info.Subscribers != 1 {
		t.Fatalf("restarted node state = %+v, want recovered ownership with 1 subscriber", info)
	}

	// The owner-epoch handshake must leave exactly one isOwner node
	// within a maintain pass: the restarted root's replication push
	// (recoveredEpoch+1) demotes the interim on receipt.
	owners := func() (count int, restartedOwns bool) {
		for i, n := range nodes {
			if info, ok := n.Channel(feedURL); ok && info.Owner {
				count++
				if i == ownerIdx {
					restartedOwns = true
				}
			}
		}
		return
	}
	mergeDeadline := time.Now().Add(15 * time.Second)
	for {
		count, restartedOwns := owners()
		if count == 1 && restartedOwns {
			break
		}
		if time.Now().After(mergeDeadline) {
			t.Fatalf("epoch handshake never converged: %d owners (restarted owns: %v)", count, restartedOwns)
		}
		time.Sleep(25 * time.Millisecond)
	}
	// And it stays converged across further maintain passes.
	time.Sleep(time.Second)
	if count, restartedOwns := owners(); count != 1 || !restartedOwns {
		t.Fatalf("ownership diverged again: %d owners (restarted owns: %v)", count, restartedOwns)
	}

	// No one re-subscribes. If the owner was also alice's entry node the
	// IM session died with the process, so log in again (an IM-layer
	// reconnect, not a subscription); otherwise the original login keeps
	// listening.
	if ownerIdx == 0 {
		if !loginAndWaitUpdate(t, restarted, "alice", 30*time.Second) {
			t.Fatal("no update delivered after restart")
		}
		return
	}
	deadline = time.After(30 * time.Second)
	for {
		select {
		case m := <-got:
			if strings.HasPrefix(m.Body, "UPDATE") {
				return // durable subscription survived the restart
			}
		case <-deadline:
			t.Fatal("no update delivered after restart")
		}
	}
}

func TestLiveNodeValidation(t *testing.T) {
	if _, err := StartLiveNode(LiveConfig{}); err == nil {
		t.Fatal("empty bind accepted")
	}
	if _, err := StartLiveNode(LiveConfig{Bind: "127.0.0.1:0", Seeds: []string{"127.0.0.1:1"}}); err == nil {
		t.Fatal("unreachable seed accepted")
	}
}

func TestSimulationDeterminism(t *testing.T) {
	// Two simulations with identical options must produce identical
	// notification sequences and identical stats.
	run := func() ([]Notification, Stats) {
		sim, err := NewSimulation(Options{Nodes: 16, PollInterval: 5 * time.Minute, Seed: 99})
		if err != nil {
			t.Fatal(err)
		}
		defer sim.Close()
		const url = "http://det.example.com/f.xml"
		sim.HostFeed(url, 12*time.Minute)
		var got []Notification
		sim.Subscribe("alice", url, func(n Notification) { got = append(got, n) })
		sim.RunFor(4 * time.Hour)
		return got, sim.Stats()
	}
	a, sa := run()
	b, sb := run()
	if len(a) != len(b) {
		t.Fatalf("notification counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Version != b[i].Version || !a[i].At.Equal(b[i].At) || a[i].Diff != b[i].Diff {
			t.Fatalf("notification %d differs between identical runs", i)
		}
	}
	if sa != sb {
		t.Fatalf("stats differ: %+v vs %+v", sa, sb)
	}
}
